package execguide

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/generalize"
	"repro/internal/schema"
	"repro/internal/schema/schematest"
	"repro/internal/sqlast"
	"repro/internal/sqlparse"
)

func mustParse(t *testing.T, srcs ...string) []*sqlast.Query {
	t.Helper()
	out := make([]*sqlast.Query, len(srcs))
	for i, s := range srcs {
		out[i] = sqlparse.MustParse(s)
	}
	return out
}

// employeeGuide builds the guide exactly as core does for the employee
// fixture: seeds harvested from the spec's sample queries.
func employeeGuide(t *testing.T, cfg Config) *Guide {
	t.Helper()
	db := schematest.Employee()
	return New(db, nil, HarvestSeeds(db, mustParse(t,
		"SELECT name FROM employee WHERE age > 30",
		"SELECT age FROM employee WHERE city = 'Austin'",
	)), cfg)
}

func TestHarvestSeeds(t *testing.T) {
	db := schematest.Employee()
	seeds := HarvestSeeds(db, mustParse(t,
		"SELECT T1.name FROM employee AS T1 WHERE T1.city = 'Austin'",
		"SELECT name FROM employee WHERE age > 30 AND city = 'Dallas'",
		"SELECT bonus FROM evaluation WHERE bonus BETWEEN 100 AND 200",
	))
	if got := seeds.Text["employee.city"]; !reflect.DeepEqual(got, []string{"Austin", "Dallas"}) {
		t.Errorf("employee.city seeds = %v, want [Austin Dallas]", got)
	}
	if got := seeds.Number["employee.age"]; !reflect.DeepEqual(got, []float64{30}) {
		t.Errorf("employee.age seeds = %v, want [30]", got)
	}
	if got := seeds.Number["evaluation.bonus"]; !reflect.DeepEqual(got, []float64{100, 200}) {
		t.Errorf("evaluation.bonus seeds = %v, want [100 200]", got)
	}
}

func TestHarvestSeedsSkipsPlaceholdersAndUnresolved(t *testing.T) {
	db := schematest.Employee()
	masked := sqlparse.MustParse("SELECT name FROM employee WHERE city = 'Austin'")
	sqlast.MaskValues(masked)
	seeds := HarvestSeeds(db, []*sqlast.Query{
		masked,
		sqlparse.MustParse("SELECT name FROM employee WHERE nosuchcolumn = 'x'"),
	})
	if len(seeds.Text) != 0 || len(seeds.Number) != 0 {
		t.Errorf("masked/unresolvable literals were harvested: %+v", seeds)
	}
}

// TestSeedInstanceDeterministic pins the determinism guarantee: two
// guides built from the same schema and seeds hold identical instances.
func TestSeedInstanceDeterministic(t *testing.T) {
	a := employeeGuide(t, Config{})
	b := employeeGuide(t, Config{})
	q := sqlparse.MustParse("SELECT name, age, city FROM employee ORDER BY name")
	ra, err := a.Instance().Exec(q)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := b.Instance().Exec(q)
	if err != nil {
		t.Fatal(err)
	}
	if !engine.ResultsEqual(ra, rb, true) {
		t.Fatalf("seeded instances diverge:\n%v\n%v", ra.Rows, rb.Rows)
	}
}

// TestSeedInstanceJoinConsistency asserts foreign-key columns copy their
// parent key values, so every child row joins: the flights fixture has
// a text FK (airportCode) and a numeric FK (airline → airlines.uid).
func TestSeedInstanceJoinConsistency(t *testing.T) {
	db := schematest.Flights()
	g := New(db, nil, Seeds{}, Config{})
	for _, src := range []string{
		"SELECT T1.city FROM airports AS T1 JOIN flights AS T2 ON T1.airportCode = T2.destAirport",
		"SELECT T1.city FROM airports AS T1 JOIN flights AS T2 ON T1.airportCode = T2.sourceAirport",
		"SELECT T1.airline FROM airlines AS T1 JOIN flights AS T2 ON T1.uid = T2.airline",
	} {
		res, err := g.Instance().Exec(sqlparse.MustParse(src))
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		if len(res.Rows) == 0 {
			t.Errorf("%s: no rows — FK seeding does not line up", src)
		}
	}
}

// TestSeedInstanceSatisfiesFilters asserts harvested literals appear in
// seeded rows (text and numeric, including placeholder filters).
func TestSeedInstanceSatisfiesFilters(t *testing.T) {
	g := employeeGuide(t, Config{})
	for _, src := range []string{
		"SELECT name FROM employee WHERE city = 'Austin'",
		"SELECT name FROM employee WHERE age > 30",
		"SELECT name FROM employee WHERE age < 30",
		"SELECT name FROM employee WHERE age = 30",
		"SELECT name FROM employee WHERE city = 'value'",
	} {
		res, err := g.Instance().Exec(sqlparse.MustParse(src))
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		if len(res.Rows) == 0 {
			t.Errorf("%s: empty — harvested value missing from the instance", src)
		}
	}
}

func TestInspectClassification(t *testing.T) {
	g := employeeGuide(t, Config{TopK: 16})
	queries := mustParse(t,
		"SELECT name FROM employee",                       // 0: ok
		"SELECT name FROM employee WHERE age > 10000",     // 1: empty
		"SELECT name FROM employee",                       // 2: duplicate of 0
		"SELECT COUNT(*) FROM employee GROUP BY employee_id", // 3: constant (all groups count 1)
		"SELECT nosuchcolumn FROM employee",               // 4: error
	)
	verdicts, err := g.Inspect(context.Background(), queries)
	if err != nil {
		t.Fatal(err)
	}
	want := []Outcome{OK, Empty, Duplicate, Constant, Error}
	for i, w := range want {
		if verdicts[i].Outcome != w {
			t.Errorf("verdict[%d] = %s (%s), want %s", i, verdicts[i].Outcome, verdicts[i].Detail, w)
		}
	}
	if verdicts[0].Rows == 0 {
		t.Error("ok verdict reports zero rows")
	}
}

// TestInspectAllEmpty pins relative emptiness: when every candidate is
// empty, none is demoted — emptiness is only evidence against a
// candidate when a sibling proves the instance can answer.
func TestInspectAllEmpty(t *testing.T) {
	g := employeeGuide(t, Config{})
	queries := mustParse(t,
		"SELECT name FROM employee WHERE age > 10000",
		"SELECT city FROM employee WHERE age > 20000",
	)
	verdicts, err := g.Inspect(context.Background(), queries)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range verdicts {
		if v.Outcome != OK {
			t.Errorf("verdict[%d] = %s, want ok (no sibling returned rows)", i, v.Outcome)
		}
	}
}

// slowQuery nests IN-subqueries so the engine's per-row subquery
// evaluation takes ~half a second on the sample instance — far past any
// test budget, without needing a pathological schema.
func slowQuery(t *testing.T) *sqlast.Query {
	t.Helper()
	const depth = 6
	sql := "SELECT COUNT(*) FROM employee WHERE employee_id IN (SELECT employee_id FROM employee"
	for i := 1; i < depth; i++ {
		sql += " WHERE employee_id IN (SELECT employee_id FROM employee"
	}
	sql += strings.Repeat(")", depth)
	return sqlparse.MustParse(sql)
}

func TestInspectBudgetTimeout(t *testing.T) {
	g := employeeGuide(t, Config{Budget: 10 * time.Millisecond})
	queries := []*sqlast.Query{
		slowQuery(t),
		sqlparse.MustParse("SELECT name FROM employee"),
	}
	verdicts, err := g.Inspect(context.Background(), queries)
	if err != nil {
		t.Fatal(err)
	}
	if verdicts[0].Outcome != Timeout {
		t.Fatalf("slow candidate classified %s, want timeout", verdicts[0].Outcome)
	}
	if verdicts[1].Outcome != OK {
		t.Fatalf("the sweep did not continue past a timeout: %s", verdicts[1].Outcome)
	}
}

// TestInspectContextEnd asserts the caller's context ending aborts the
// sweep with an error instead of a Timeout verdict — budget expiry and
// caller cancellation are different failures.
func TestInspectContextEnd(t *testing.T) {
	g := employeeGuide(t, Config{Budget: time.Hour})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	_, err := g.Inspect(ctx, []*sqlast.Query{slowQuery(t)})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("got %v, want context.DeadlineExceeded", err)
	}
}

func TestInspectTopKCap(t *testing.T) {
	g := employeeGuide(t, Config{TopK: 2})
	queries := mustParse(t,
		"SELECT name FROM employee",
		"SELECT city FROM employee",
		"SELECT age FROM employee",
	)
	verdicts, err := g.Inspect(context.Background(), queries)
	if err != nil {
		t.Fatal(err)
	}
	if len(verdicts) != 2 {
		t.Fatalf("got %d verdicts, want 2 (TopK cap)", len(verdicts))
	}
}

func TestReorder(t *testing.T) {
	verdicts := []Verdict{
		{Index: 0, Outcome: OK},
		{Index: 1, Outcome: Empty},     // soft
		{Index: 2, Outcome: Error},     // hard
		{Index: 3, Outcome: OK},
		{Index: 4, Outcome: Timeout},   // hard
		{Index: 5, Outcome: Duplicate}, // soft
	}
	got := Reorder(8, verdicts)
	want := []int{0, 3, 6, 7, 1, 5, 2, 4}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Reorder = %v, want %v", got, want)
	}
	if got := Reorder(3, nil); !reflect.DeepEqual(got, []int{0, 1, 2}) {
		t.Fatalf("Reorder without verdicts = %v, want identity", got)
	}
}

func TestOutcomeStringAndClass(t *testing.T) {
	cases := []struct {
		o     Outcome
		s     string
		class int
	}{
		{OK, "ok", 0}, {Empty, "empty", 1}, {Constant, "constant", 1},
		{Duplicate, "duplicate", 1}, {Error, "error", 2}, {Timeout, "timeout", 2},
	}
	for _, c := range cases {
		if c.o.String() != c.s || c.o.DemotionClass() != c.class {
			t.Errorf("%d: got (%s, %d), want (%s, %d)", int(c.o), c.o, c.o.DemotionClass(), c.s, c.class)
		}
	}
}

func TestEstimateCost(t *testing.T) {
	simple := sqlparse.MustParse("SELECT name FROM employee")
	join := sqlparse.MustParse(
		"SELECT T1.name FROM employee AS T1 JOIN evaluation AS T2 ON T1.employee_id = T2.employee_id GROUP BY T1.name ORDER BY COUNT(*) DESC LIMIT 1")
	if cs, cj := EstimateCost(simple), EstimateCost(join); cs >= cj {
		t.Errorf("join query cost %v not above simple query cost %v", cj, cs)
	}
	if f := CostFeature(nil); f != 0 {
		t.Errorf("CostFeature(nil) = %v, want 0", f)
	}
	for _, q := range []*sqlast.Query{simple, join} {
		if f := CostFeature(q); f < 0 || f >= 1 {
			t.Errorf("CostFeature(%s) = %v, out of [0,1)", q, f)
		}
	}
}

func TestContentValuesFeedSeeding(t *testing.T) {
	db := schematest.Employee()
	content := engine.NewInstance(db)
	content.MustInsert("employee", engine.Num(1), engine.Str("Alice"), engine.Num(40), engine.Str("Berlin"))
	g := New(db, content, Seeds{}, Config{})
	res, err := g.Instance().Exec(sqlparse.MustParse("SELECT name FROM employee WHERE city = 'Berlin'"))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("content value 'Berlin' did not reach the seeded instance")
	}
}

// TestPoolExecutionNeverPanics is the pool-wide property test: every
// query the generalizer can produce for the employee and flights
// fixtures must execute on the seeded sample instance without
// panicking — a typed error is acceptable, a crash is not.
func TestPoolExecutionNeverPanics(t *testing.T) {
	fixtures := []struct {
		name    string
		db      *schema.Database
		samples []string
	}{
		{"employee", schematest.Employee(), []string{
			"SELECT T1.name FROM employee AS T1 JOIN evaluation AS T2 ON T1.employee_id = T2.employee_id ORDER BY T2.bonus DESC LIMIT 1",
			"SELECT name FROM employee WHERE age > 30",
			"SELECT age FROM employee WHERE city = 'Austin'",
			"SELECT city, COUNT(*) FROM employee GROUP BY city",
			"SELECT AVG(bonus) FROM evaluation",
			"SELECT COUNT(*) FROM employee",
			"SELECT shop_name FROM shop ORDER BY number_products DESC LIMIT 1",
			"SELECT name FROM employee ORDER BY age DESC LIMIT 1",
			"SELECT city FROM employee",
		}},
		{"flights", schematest.Flights(), []string{
			"SELECT T1.city FROM airports AS T1 JOIN flights AS T2 ON T1.airportCode = T2.destAirport GROUP BY T1.city ORDER BY COUNT(*) DESC LIMIT 1",
			"SELECT T1.city FROM airports AS T1 JOIN flights AS T2 ON T1.airportCode = T2.sourceAirport GROUP BY T1.city ORDER BY COUNT(*) DESC LIMIT 1",
			"SELECT COUNT(*) FROM flights",
			"SELECT city FROM airports",
			"SELECT airportName FROM airports WHERE city = 'Austin'",
			"SELECT airline FROM airlines WHERE country = 'USA'",
		}},
	}
	for _, fx := range fixtures {
		fx := fx
		t.Run(fx.name, func(t *testing.T) {
			samples := make([]*sqlast.Query, len(fx.samples))
			for i, s := range fx.samples {
				samples[i] = sqlparse.MustParse(s)
			}
			res := generalize.Generalize(fx.db, samples, generalize.Config{
				TargetSize: 300,
				Seed:       42,
				Rules:      generalize.AllRules(),
			})
			if len(res.Queries) == 0 {
				t.Fatal("generalization produced no pool")
			}
			g := New(fx.db, nil, HarvestSeeds(fx.db, samples), Config{})
			for i, q := range res.Queries {
				execNoPanic(t, g.Instance(), q, i)
			}
		})
	}
}

// execNoPanic executes one pool query under a recover boundary; only a
// panic fails the test.
func execNoPanic(t *testing.T, inst *engine.Instance, q *sqlast.Query, i int) {
	t.Helper()
	defer func() {
		if rec := recover(); rec != nil {
			t.Errorf("pool query %d panicked: %v\n  %s", i, rec, q)
		}
	}()
	if _, err := inst.Exec(q); err != nil && err.Error() == "" {
		// Typed errors are fine — the guide turns them into verdicts —
		// but they must carry a message for the verdict detail.
		t.Errorf("pool query %d returned an error with no message", i)
	}
}
