package execguide

import (
	"sort"
	"strconv"
	"strings"

	"repro/internal/schema"
	"repro/internal/sqlast"
)

// Seeds are per-column literal values harvested from the spec's sample
// queries, keyed by lower-cased "table.column". They drive the sample
// instance's cell values so a post-processed candidate's literal filter
// (WHERE city = 'Austin') can actually match seeded rows: without them
// every value-filtering candidate returns empty and execution evidence
// degenerates to "everything with a filter looks broken".
type Seeds struct {
	Text   map[string][]string
	Number map[string][]float64
}

// HarvestSeeds walks the sample queries and collects every literal
// compared against a column (comparisons and BETWEEN bounds), resolved
// through the block's table aliases. Masked placeholders are skipped —
// the pool is value-masked, the unmasked spec samples are the intended
// input. The result is deterministic: values are sorted and distinct.
func HarvestSeeds(db *schema.Database, queries []*sqlast.Query) Seeds {
	text := make(map[string]map[string]bool)
	num := make(map[string]map[float64]bool)
	for _, q := range queries {
		sqlast.WalkQueries(q, func(sub *sqlast.Query) {
			sel := sub.Select
			if sel == nil {
				return
			}
			record := func(colSide, litSide sqlast.Expr) {
				col, ok := colSide.(*sqlast.ColumnRef)
				if !ok || col.IsStar() {
					return
				}
				lit, ok := litSide.(*sqlast.Lit)
				if !ok || lit.Kind == sqlast.PlaceholderLit {
					return
				}
				key := resolveColumn(db, sel, col)
				if key == "" {
					return
				}
				if lit.Kind == sqlast.NumberLit {
					if f, err := strconv.ParseFloat(lit.Text, 64); err == nil {
						if num[key] == nil {
							num[key] = make(map[float64]bool)
						}
						num[key][f] = true
					}
					return
				}
				if text[key] == nil {
					text[key] = make(map[string]bool)
				}
				text[key][lit.Text] = true
			}
			harvest := func(e sqlast.Expr) {
				sqlast.WalkExprs(e, func(n sqlast.Expr) {
					switch x := n.(type) {
					case *sqlast.Binary:
						record(x.L, x.R)
						record(x.R, x.L)
					case *sqlast.Between:
						record(x.X, x.Lo)
						record(x.X, x.Hi)
					}
				})
			}
			harvest(sel.Where)
			harvest(sel.Having)
		})
	}
	out := Seeds{
		Text:   make(map[string][]string, len(text)),
		Number: make(map[string][]float64, len(num)),
	}
	for key, set := range text {
		vals := make([]string, 0, len(set))
		for v := range set {
			vals = append(vals, v)
		}
		sort.Strings(vals)
		out.Text[key] = vals
	}
	for key, set := range num {
		vals := make([]float64, 0, len(set))
		for v := range set {
			vals = append(vals, v)
		}
		sort.Float64s(vals)
		out.Number[key] = vals
	}
	return out
}

// resolveColumn maps a (possibly aliased, possibly unqualified) column
// reference to its "table.column" seed key, or "" when it cannot be
// resolved against this block's FROM clause and the schema.
func resolveColumn(db *schema.Database, sel *sqlast.Select, col *sqlast.ColumnRef) string {
	if col.Table != "" {
		for _, t := range sel.From.Tables {
			if t.Name == "" {
				continue
			}
			if strings.EqualFold(t.Alias, col.Table) || strings.EqualFold(t.Name, col.Table) {
				if st := db.Table(t.Name); st != nil && st.Column(col.Column) != nil {
					return strings.ToLower(t.Name + "." + col.Column)
				}
				return ""
			}
		}
		return ""
	}
	for _, t := range sel.From.Tables {
		if t.Name == "" {
			continue
		}
		if st := db.Table(t.Name); st != nil && st.Column(col.Column) != nil {
			return strings.ToLower(t.Name + "." + col.Column)
		}
	}
	return ""
}
