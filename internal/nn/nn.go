// Package nn implements the small feed-forward scoring network used by
// GAR's second-stage re-ranking model: fully-connected layers with ReLU
// activations, Adam optimization, and the listwise softmax
// cross-entropy objective (ListNet) — the same family of listwise
// losses as the NeuralNDCG objective the paper trains with.
package nn

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"math"
	"math/rand"
)

// MLP is a fully-connected network with ReLU hidden layers and a single
// linear output.
type MLP struct {
	sizes   []int
	weights [][][]float64 // layer → out → in
	biases  [][]float64   // layer → out

	// Adam state.
	mW, vW [][][]float64
	mB, vB [][]float64
	step   int
}

// NewMLP builds a network with the given layer sizes; the last size must
// be 1 (a scalar score) and every size must be positive. Weights use
// scaled uniform initialization.
func NewMLP(sizes []int, seed int64) (*MLP, error) {
	if len(sizes) < 2 || sizes[len(sizes)-1] != 1 {
		return nil, fmt.Errorf("nn: MLP needs at least [in, 1] sizes with scalar output, got %v", sizes)
	}
	for _, n := range sizes {
		if n <= 0 {
			return nil, fmt.Errorf("nn: MLP layer sizes must be positive, got %v", sizes)
		}
	}
	rng := rand.New(rand.NewSource(seed))
	m := &MLP{sizes: sizes}
	for l := 0; l+1 < len(sizes); l++ {
		in, out := sizes[l], sizes[l+1]
		scale := math.Sqrt(2.0 / float64(in))
		w := make([][]float64, out)
		mw := make([][]float64, out)
		vw := make([][]float64, out)
		for o := range w {
			w[o] = make([]float64, in)
			mw[o] = make([]float64, in)
			vw[o] = make([]float64, in)
			for i := range w[o] {
				w[o][i] = (rng.Float64()*2 - 1) * scale
			}
		}
		m.weights = append(m.weights, w)
		m.mW = append(m.mW, mw)
		m.vW = append(m.vW, vw)
		m.biases = append(m.biases, make([]float64, out))
		m.mB = append(m.mB, make([]float64, out))
		m.vB = append(m.vB, make([]float64, out))
	}
	return m, nil
}

// InputDim returns the expected feature dimension.
func (m *MLP) InputDim() int { return m.sizes[0] }

// Score runs a forward pass and returns the scalar output.
func (m *MLP) Score(x []float64) float64 {
	acts := m.forward(x)
	return acts[len(acts)-1][0]
}

// forward returns the activations of every layer (input first).
func (m *MLP) forward(x []float64) [][]float64 {
	acts := [][]float64{x}
	cur := x
	for l := range m.weights {
		out := make([]float64, m.sizes[l+1])
		for o := range out {
			s := m.biases[l][o]
			row := m.weights[l][o]
			for i, v := range cur {
				s += row[i] * v
			}
			if l+1 < len(m.weights) { // hidden layers: ReLU
				if s < 0 {
					s = 0
				}
			}
			out[o] = s
		}
		acts = append(acts, out)
		cur = out
	}
	return acts
}

// grads accumulates parameter gradients for a batch.
type grads struct {
	w [][][]float64
	b [][]float64
}

func (m *MLP) newGrads() *grads {
	g := &grads{}
	for l := range m.weights {
		w := make([][]float64, len(m.weights[l]))
		for o := range w {
			w[o] = make([]float64, len(m.weights[l][o]))
		}
		g.w = append(g.w, w)
		g.b = append(g.b, make([]float64, len(m.biases[l])))
	}
	return g
}

// backward accumulates gradients for one example given dLoss/dScore.
func (m *MLP) backward(acts [][]float64, dScore float64, g *grads) {
	// delta for the output layer (linear).
	delta := []float64{dScore}
	for l := len(m.weights) - 1; l >= 0; l-- {
		in := acts[l]
		for o, d := range delta {
			g.b[l][o] += d
			row := g.w[l][o]
			for i, v := range in {
				row[i] += d * v
			}
		}
		if l == 0 {
			break
		}
		prev := make([]float64, len(in))
		for i := range prev {
			var s float64
			for o, d := range delta {
				s += d * m.weights[l][o][i]
			}
			if in[i] <= 0 { // ReLU derivative of the hidden activation
				s = 0
			}
			prev[i] = s
		}
		delta = prev
	}
}

// adamApply performs one Adam update with the accumulated gradients.
func (m *MLP) adamApply(g *grads, lr float64) {
	const (
		beta1 = 0.9
		beta2 = 0.999
		eps   = 1e-8
	)
	m.step++
	bc1 := 1 - math.Pow(beta1, float64(m.step))
	bc2 := 1 - math.Pow(beta2, float64(m.step))
	for l := range m.weights {
		for o := range m.weights[l] {
			for i := range m.weights[l][o] {
				grad := g.w[l][o][i]
				m.mW[l][o][i] = beta1*m.mW[l][o][i] + (1-beta1)*grad
				m.vW[l][o][i] = beta2*m.vW[l][o][i] + (1-beta2)*grad*grad
				m.weights[l][o][i] -= lr * (m.mW[l][o][i] / bc1) / (math.Sqrt(m.vW[l][o][i]/bc2) + eps)
			}
			grad := g.b[l][o]
			m.mB[l][o] = beta1*m.mB[l][o] + (1-beta1)*grad
			m.vB[l][o] = beta2*m.vB[l][o] + (1-beta2)*grad*grad
			m.biases[l][o] -= lr * (m.mB[l][o] / bc1) / (math.Sqrt(m.vB[l][o]/bc2) + eps)
		}
	}
}

// List is one listwise training group: the candidate feature vectors for
// a single NL query and their relevance labels (1 for the gold dialect,
// 0 otherwise; graded labels are allowed).
type List struct {
	Features [][]float64
	Labels   []float64
}

// TrainConfig controls listwise training.
type TrainConfig struct {
	Epochs int     // default 10
	LR     float64 // default 0.003
	Seed   int64
}

// TrainListwise fits the network with the ListNet objective: the
// cross-entropy between the softmax of the predicted scores and the
// normalized label distribution of each list. It returns the mean loss
// per epoch.
func (m *MLP) TrainListwise(lists []List, cfg TrainConfig) []float64 {
	if cfg.Epochs <= 0 {
		cfg.Epochs = 10
	}
	if cfg.LR == 0 {
		cfg.LR = 0.003
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	order := make([]int, len(lists))
	for i := range order {
		order[i] = i
	}
	var losses []float64
	for ep := 0; ep < cfg.Epochs; ep++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		var sum float64
		var n int
		for _, li := range order {
			l := lists[li]
			if len(l.Features) == 0 {
				continue
			}
			loss := m.listStep(l, cfg.LR)
			sum += loss
			n++
		}
		if n > 0 {
			sum /= float64(n)
		}
		losses = append(losses, sum)
	}
	return losses
}

// listStep applies one ListNet update for a single list.
func (m *MLP) listStep(l List, lr float64) float64 {
	n := len(l.Features)
	actsAll := make([][][]float64, n)
	scores := make([]float64, n)
	for i, x := range l.Features {
		acts := m.forward(x)
		actsAll[i] = acts
		scores[i] = acts[len(acts)-1][0]
	}
	pred := softmax(scores)
	target := normalizeLabels(l.Labels)

	// Loss = -sum target_i * log(pred_i); dLoss/dscore_i = pred_i - target_i.
	var loss float64
	for i := range pred {
		if target[i] > 0 {
			loss -= target[i] * math.Log(pred[i]+1e-12)
		}
	}
	g := m.newGrads()
	for i := range pred {
		m.backward(actsAll[i], pred[i]-target[i], g)
	}
	m.adamApply(g, lr)
	return loss
}

func softmax(scores []float64) []float64 {
	maxS := scores[0]
	for _, s := range scores[1:] {
		if s > maxS {
			maxS = s
		}
	}
	out := make([]float64, len(scores))
	var sum float64
	for i, s := range scores {
		out[i] = math.Exp(s - maxS)
		sum += out[i]
	}
	for i := range out {
		out[i] /= sum
	}
	return out
}

// normalizeLabels converts labels to a probability distribution; an
// all-zero list becomes uniform.
func normalizeLabels(labels []float64) []float64 {
	out := make([]float64, len(labels))
	var sum float64
	for _, l := range labels {
		if l > 0 {
			sum += l
		}
	}
	if sum == 0 {
		for i := range out {
			out[i] = 1 / float64(len(labels))
		}
		return out
	}
	for i, l := range labels {
		if l > 0 {
			out[i] = l / sum
		}
	}
	return out
}

// mlpState is the serialized form of MLP, including the optimizer state
// so training can resume after a load.
type mlpState struct {
	Sizes   []int
	Weights [][][]float64
	Biases  [][]float64
	MW, VW  [][][]float64
	MB, VB  [][]float64
	Step    int
}

// GobEncode implements gob.GobEncoder.
func (m *MLP) GobEncode() ([]byte, error) {
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(mlpState{
		Sizes: m.sizes, Weights: m.weights, Biases: m.biases,
		MW: m.mW, VW: m.vW, MB: m.mB, VB: m.vB, Step: m.step,
	})
	if err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// GobDecode implements gob.GobDecoder.
func (m *MLP) GobDecode(data []byte) error {
	var st mlpState
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&st); err != nil {
		return err
	}
	m.sizes, m.weights, m.biases = st.Sizes, st.Weights, st.Biases
	m.mW, m.vW, m.mB, m.vB, m.step = st.MW, st.VW, st.MB, st.VB, st.Step
	return nil
}
