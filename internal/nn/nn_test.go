package nn_test

import (
	"math/rand"
	"testing"

	"repro/internal/nn"
)

func TestNewMLPValidation(t *testing.T) {
	if _, err := nn.NewMLP([]int{4, 2}, 1); err == nil {
		t.Error("expected error for non-scalar output")
	}
	if _, err := nn.NewMLP([]int{4}, 1); err == nil {
		t.Error("expected error for missing input layer")
	}
	if _, err := nn.NewMLP([]int{0, 1}, 1); err == nil {
		t.Error("expected error for non-positive layer size")
	}
}

// mustMLP builds a valid network for tests.
func mustMLP(t *testing.T, sizes []int, seed int64) *nn.MLP {
	t.Helper()
	m, err := nn.NewMLP(sizes, seed)
	if err != nil {
		t.Fatalf("NewMLP(%v): %v", sizes, err)
	}
	return m
}

func TestScoreDeterministic(t *testing.T) {
	a := mustMLP(t, []int{4, 8, 1}, 7)
	b := mustMLP(t, []int{4, 8, 1}, 7)
	x := []float64{0.1, -0.5, 0.3, 1}
	if a.Score(x) != b.Score(x) {
		t.Error("same seed should give identical networks")
	}
	c := mustMLP(t, []int{4, 8, 1}, 8)
	if a.Score(x) == c.Score(x) {
		t.Error("different seeds should give different networks")
	}
}

// makeLists builds a synthetic listwise task: the item whose first
// feature is largest is the relevant one; other features are noise.
func makeLists(n, listLen int, seed int64) []nn.List {
	rng := rand.New(rand.NewSource(seed))
	lists := make([]nn.List, n)
	for i := range lists {
		feats := make([][]float64, listLen)
		labels := make([]float64, listLen)
		best, bestV := 0, -1.0
		for j := range feats {
			f := []float64{rng.Float64(), rng.Float64(), rng.Float64()}
			feats[j] = f
			if f[0] > bestV {
				best, bestV = j, f[0]
			}
		}
		labels[best] = 1
		lists[i] = nn.List{Features: feats, Labels: labels}
	}
	return lists
}

func accuracy(m *nn.MLP, lists []nn.List) float64 {
	correct := 0
	for _, l := range lists {
		bestIdx, bestScore := 0, m.Score(l.Features[0])
		for j := 1; j < len(l.Features); j++ {
			if s := m.Score(l.Features[j]); s > bestScore {
				bestIdx, bestScore = j, s
			}
		}
		if l.Labels[bestIdx] == 1 {
			correct++
		}
	}
	return float64(correct) / float64(len(lists))
}

func TestTrainListwiseLearnsRanking(t *testing.T) {
	train := makeLists(200, 5, 1)
	test := makeLists(100, 5, 2)
	m := mustMLP(t, []int{3, 16, 1}, 3)
	before := accuracy(m, test)
	losses := m.TrainListwise(train, nn.TrainConfig{Epochs: 15, LR: 0.01, Seed: 4})
	after := accuracy(m, test)
	if losses[len(losses)-1] >= losses[0] {
		t.Errorf("loss did not decrease: first %.4f last %.4f", losses[0], losses[len(losses)-1])
	}
	if after < 0.9 {
		t.Errorf("test accuracy %.2f too low (was %.2f before training)", after, before)
	}
	if after <= before {
		t.Errorf("training did not improve accuracy: %.2f → %.2f", before, after)
	}
}

func TestTrainListwiseGradedLabels(t *testing.T) {
	// Graded labels (0.5 vs 1.0) must be accepted and the top item learned.
	rng := rand.New(rand.NewSource(9))
	var lists []nn.List
	for i := 0; i < 100; i++ {
		feats := [][]float64{
			{1, rng.Float64()},
			{0.5, rng.Float64()},
			{0, rng.Float64()},
		}
		lists = append(lists, nn.List{Features: feats, Labels: []float64{1, 0.5, 0}})
	}
	m := mustMLP(t, []int{2, 8, 1}, 5)
	m.TrainListwise(lists, nn.TrainConfig{Epochs: 10, LR: 0.01, Seed: 6})
	if m.Score([]float64{1, 0.5}) <= m.Score([]float64{0, 0.5}) {
		t.Error("graded training failed to order scores")
	}
}

func TestTrainListwiseEmptyLists(t *testing.T) {
	m := mustMLP(t, []int{2, 1}, 1)
	losses := m.TrainListwise([]nn.List{{}}, nn.TrainConfig{Epochs: 2})
	if len(losses) != 2 {
		t.Errorf("expected 2 epochs, got %d", len(losses))
	}
}

func TestAllZeroLabelsUniformTarget(t *testing.T) {
	m := mustMLP(t, []int{2, 4, 1}, 2)
	lists := []nn.List{{
		Features: [][]float64{{1, 0}, {0, 1}},
		Labels:   []float64{0, 0},
	}}
	losses := m.TrainListwise(lists, nn.TrainConfig{Epochs: 3, LR: 0.01})
	for _, l := range losses {
		if l <= 0 {
			t.Errorf("uniform-target loss should be positive: %v", losses)
		}
	}
}
