package rerank_test

import (
	"testing"

	"repro/internal/rerank"
	"repro/internal/text"
)

// BenchmarkFeatures measures cross-pair feature extraction, the inner
// loop of second-stage re-ranking (k pairs per translated question).
func BenchmarkFeatures(b *testing.B) {
	x := &rerank.Extractor{IDF: text.NewIDF([]string{"find the name of employee"})}
	const nl = "find the name of the employee who got the highest one time bonus"
	const d = "Find the name of employee regarding to employee with evaluation. Return the top one result in descending order of one bonus of the employee evaluation."
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = x.Features(nl, d)
	}
}
