// Package rerank implements GAR's second-stage re-ranking model
// (§III-C2). The paper fine-tunes a RoBERTa cross-encoder with a
// listwise NeuralNDCG objective; this package substitutes a feed-forward
// network over cross-pair interaction features (lexical overlap, IDF
// weighted coverage, n-gram and character similarity, length and value
// signals, and the retrieval encoder's cosine) trained with the ListNet
// listwise objective — same role: fine-grained relevance scoring of
// (NL query, dialect expression) pairs, trained per query list.
package rerank

import (
	"context"
	"math"
	"strings"

	"repro/internal/embed"
	"repro/internal/nn"
	"repro/internal/parallel"
	"repro/internal/text"
	"repro/internal/vector"
)

// FeatureDim is the size of the cross-pair feature vector.
const FeatureDim = 21

// Extractor computes cross-pair features. The IDF statistics come from
// the dialect corpus; the encoder contributes its learned similarity.
type Extractor struct {
	IDF     *text.IDF
	Encoder *embed.Encoder
}

// superlatives are NL markers that align with ORDER BY ... LIMIT 1
// dialect phrases; mirrored against the dialect template vocabulary.
var superlatives = map[string]bool{
	"most": true, "highest": true, "largest": true, "biggest": true,
	"maximum": true, "max": true, "top": true, "best": true,
	"fewest": true, "lowest": true, "smallest": true, "minimum": true,
	"min": true, "least": true, "youngest": true, "oldest": true,
	"longest": true, "shortest": true, "earliest": true, "latest": true,
}

var negations = map[string]bool{
	"not": true, "no": true, "never": true, "without": true,
	"except": true, "exclude": true, "excluding": true,
}

var aggregates = map[string]bool{
	"number": true, "count": true, "many": true, "total": true,
	"sum": true, "average": true, "mean": true, "maximum": true,
	"minimum": true, "highest": true, "lowest": true,
}

// Prep caches every NL-side artifact of Features — tokenizations,
// n-grams, cue and marker flags, and the query embedding — so scoring a
// question against k retrieved candidates pays the NL-side cost once
// instead of k times. A Prep is immutable after Prepare and safe to
// share across concurrent scoring workers.
type Prep struct {
	nl      string
	toks    []string
	content []string
	bigrams []string
	grams   []string
	nums    []string

	hasSuper, hasNeg, hasAgg       bool
	groupCue, orderCue, compareCue bool
	head []string
	// vec is the query embedding under the extractor's encoder; nil
	// when the extractor has no encoder.
	vec vector.Vec
}

// Prepare computes the NL-side feature artifacts for one question.
func (x *Extractor) Prepare(nl string) *Prep {
	var vec vector.Vec
	if x.Encoder != nil {
		vec = x.Encoder.Encode(nl)
	}
	return x.PrepareVec(nl, vec)
}

// PrepareVec is Prepare with a precomputed query embedding (the exact
// value x.Encoder.Encode(nl) would return), letting callers that
// already encoded the question — retrieval did, or a cache holds it —
// skip the second encode.
func (x *Extractor) PrepareVec(nl string, vec vector.Vec) *Prep {
	toks := text.Tokenize(nl)
	content := text.CanonTokens(nl)
	return &Prep{
		nl:         nl,
		toks:       toks,
		content:    content,
		bigrams:    text.NGrams(toks, 2),
		grams:      charGrams(content),
		nums:       numbers(toks),
		hasSuper:   hasAny(toks, superlatives),
		hasNeg:     hasAny(toks, negations),
		hasAgg:     hasAny(toks, aggregates),
		groupCue:   hasGroupCue(nl),
		orderCue:   hasOrderCue(nl),
		compareCue: hasCompareCue(nl),
		head:       headTokens(content, 3),
		vec:        vec,
	}
}

// Features computes the feature vector for one (NL, dialect) pair.
func (x *Extractor) Features(nl, dial string) []float64 {
	return x.FeaturesPrep(x.Prepare(nl), dial, nil)
}

// FeaturesPrep computes the feature vector for one prepared question
// against one candidate dialect, with a zero cost feature. dialVec,
// when non-nil, must be the encoder embedding of dial (pipelines
// precompute one per pool candidate at snapshot-build time); nil falls
// back to encoding dial on the spot. Either way the resulting features
// are bit-identical to Features(nl, dial) — the determinism suite
// depends on that.
func (x *Extractor) FeaturesPrep(p *Prep, dial string, dialVec vector.Vec) []float64 {
	return x.FeaturesPrepCost(p, dial, dialVec, 0)
}

// FeaturesPrepCost is FeaturesPrep with the candidate's estimated-cost
// feature (execguide.CostFeature of its SQL, normalized to [0,1); 0
// when no cost signal is available). The cost is a static property of
// the candidate, so pipelines compute it once per pool entry.
func (x *Extractor) FeaturesPrepCost(p *Prep, dial string, dialVec vector.Vec, cost float64) []float64 {
	dToks := text.Tokenize(dial)
	dContent := text.CanonTokens(dial)

	f := make([]float64, 0, FeatureDim)
	// 0-2: token-set similarity.
	f = append(f, text.Jaccard(p.content, dContent))
	f = append(f, text.OverlapRatio(p.content, dContent))
	f = append(f, text.OverlapRatio(dContent, p.content))
	// 3: IDF-weighted coverage of the NL query by the dialect.
	f = append(f, x.IDF.WeightedOverlap(p.content, dContent))
	// 4: bigram overlap.
	f = append(f, text.Jaccard(p.bigrams, text.NGrams(dToks, 2)))
	// 5: character-trigram similarity (robust to morphology).
	f = append(f, text.Jaccard(p.grams, charGrams(dContent)))
	// 6: normalized token edit distance.
	ed := text.EditDistance(p.toks, dToks)
	den := len(p.toks) + len(dToks)
	if den == 0 {
		den = 1
	}
	f = append(f, 1-float64(ed)/float64(den))
	// 7-8: length signals.
	f = append(f, lengthRatio(len(p.toks), len(dToks)))
	f = append(f, math.Abs(float64(len(p.toks)-len(dToks)))/16)
	// 9: numeric literal agreement.
	f = append(f, setAgreement(p.nums, numbers(dToks)))
	// 10-12: superlative / negation / aggregate marker agreement.
	f = append(f, boolFeat(p.hasSuper == hasAny(dToks, superlatives)))
	f = append(f, boolFeat(p.hasNeg == hasAny(dToks, negations)))
	f = append(f, boolFeat(p.hasAgg == hasAny(dToks, aggregates)))
	// 13: "for each"/"per" vs GROUP BY phrase agreement.
	f = append(f, boolFeat(p.groupCue == strings.Contains(dial, "for each")))
	// 14: ordering cue agreement.
	f = append(f, boolFeat(p.orderCue == strings.Contains(dial, "order of")))
	// 15: comparison cue agreement ("more than", "at least", ...).
	f = append(f, boolFeat(p.compareCue == hasCompareCue(dial)))
	// 16: select-sentence agreement — coverage of the dialect's first
	// sentence (the projection) by the NL query; separates candidates
	// that differ only in the selected columns.
	firstSentence := dial
	if i := strings.IndexByte(dial, '.'); i > 0 {
		firstSentence = dial[:i]
	}
	f = append(f, text.OverlapRatio(text.CanonTokens(firstSentence), p.content))
	// 17: leading-token agreement — the head of the question names the
	// projection ("find the AGE of ..."), so its first content tokens
	// must appear in the dialect's projection sentence. This separates
	// role-swapped candidates (ORDER BY age vs SELECT age) that share a
	// bag of words.
	f = append(f, text.OverlapRatio(p.head, text.CanonTokens(firstSentence)))
	// 18: learned retrieval similarity.
	switch {
	case x.Encoder == nil:
		f = append(f, 0)
	case dialVec != nil:
		f = append(f, float64(vector.Dot(p.vec, dialVec)))
	default:
		f = append(f, float64(vector.Dot(p.vec, x.Encoder.Encode(dial))))
	}
	// 19: estimated execution cost of the candidate's SQL.
	f = append(f, cost)
	// 20: bias.
	f = append(f, 1)
	return f
}

// headTokens returns the first n tokens of the slice.
func headTokens(tokens []string, n int) []string {
	if len(tokens) < n {
		return tokens
	}
	return tokens[:n]
}

func charGrams(tokens []string) []string {
	var out []string
	for _, t := range tokens {
		out = append(out, text.CharNGrams(t, 3)...)
	}
	return out
}

func lengthRatio(a, b int) float64 {
	if a == 0 || b == 0 {
		return 0
	}
	if a > b {
		a, b = b, a
	}
	return float64(a) / float64(b)
}

// setAgreement compares the numeric-literal sets of both sides: a pair
// with no numbers anywhere agrees perfectly, otherwise Jaccard.
func setAgreement(na, nb []string) float64 {
	if len(na) == 0 && len(nb) == 0 {
		return 1
	}
	return text.Jaccard(na, nb)
}

func numbers(tokens []string) []string {
	var out []string
	for _, t := range tokens {
		if t[0] >= '0' && t[0] <= '9' {
			out = append(out, t)
		}
	}
	return out
}

func hasAny(tokens []string, set map[string]bool) bool {
	for _, t := range tokens {
		if set[t] {
			return true
		}
	}
	return false
}

func hasGroupCue(s string) bool {
	ls := strings.ToLower(s)
	return strings.Contains(ls, "for each") || strings.Contains(ls, " per ") ||
		strings.Contains(ls, "each ") || strings.Contains(ls, "for every")
}

func hasOrderCue(s string) bool {
	ls := strings.ToLower(s)
	for _, cue := range []string{"order of", "sorted", "sort ", "ordered", "alphabetical",
		"ascending", "descending", "highest", "lowest", "most", "fewest", "largest",
		"smallest", "top ", "best", "oldest", "youngest", "longest", "shortest"} {
		if strings.Contains(ls, cue) {
			return true
		}
	}
	return false
}

func hasCompareCue(s string) bool {
	ls := strings.ToLower(s)
	for _, cue := range []string{"more than", "less than", "greater than", "at least",
		"at most", "above", "below", "over ", "under ", "exceed"} {
		if strings.Contains(ls, cue) {
			return true
		}
	}
	return false
}

func boolFeat(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// Model is the trained re-ranking model.
type Model struct {
	X   *Extractor
	Net *nn.MLP
}

// New builds an untrained re-ranker with the standard architecture
// (FeatureDim → 24 → 12 → 1).
func New(x *Extractor, seed int64) (*Model, error) {
	net, err := nn.NewMLP([]int{FeatureDim, 24, 12, 1}, seed)
	if err != nil {
		return nil, err
	}
	return &Model{X: x, Net: net}, nil
}

// Score returns the relevance score of a (NL, dialect) pair.
func (m *Model) Score(nl, dial string) float64 {
	return m.Net.Score(m.X.Features(nl, dial))
}

// ScorePrep scores one prepared question against one candidate.
// dialVec, when non-nil, must be the encoder embedding of dial. The
// score is bit-identical to Score(nl, dial).
func (m *Model) ScorePrep(p *Prep, dial string, dialVec vector.Vec) float64 {
	return m.ScorePrepCost(p, dial, dialVec, 0)
}

// ScorePrepCost is ScorePrep with the candidate's estimated-cost
// feature.
func (m *Model) ScorePrepCost(p *Prep, dial string, dialVec vector.Vec, cost float64) float64 {
	return m.Net.Score(m.X.FeaturesPrepCost(p, dial, dialVec, cost))
}

// ScoreBatchContext scores the prepared question against every
// candidate, fanning the forward passes across workers (0 means one
// per CPU). dialVecs and costs are each either nil or aligned with
// dialects (nil costs scores every pair with a zero cost feature).
// scores[i] is bit-identical to the sequential per-pair score
// regardless of the worker count — each score depends only on its own
// (Prep, dialect, cost) triple.
func (m *Model) ScoreBatchContext(ctx context.Context, p *Prep, dialects []string, dialVecs []vector.Vec, costs []float64, workers int) ([]float64, error) {
	scores := make([]float64, len(dialects))
	err := parallel.ForEach(ctx, len(dialects), workers, func(i int) error {
		var dv vector.Vec
		if dialVecs != nil {
			dv = dialVecs[i]
		}
		var cost float64
		if costs != nil {
			cost = costs[i]
		}
		scores[i] = m.ScorePrepCost(p, dialects[i], dv, cost)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return scores, nil
}

// RankScoresPrepContext ranks the candidates for a prepared question
// and returns both the descending-score index order and the raw score
// per original candidate index, so callers never re-score a candidate
// they already ranked.
func (m *Model) RankScoresPrepContext(ctx context.Context, p *Prep, dialects []string, dialVecs []vector.Vec, costs []float64, workers int) ([]int, []float64, error) {
	scores, err := m.ScoreBatchContext(ctx, p, dialects, dialVecs, costs, workers)
	if err != nil {
		return nil, nil, err
	}
	return rankOrder(scores), scores, nil
}

// RankScoresContext is RankScoresPrepContext over a raw NL question.
func (m *Model) RankScoresContext(ctx context.Context, nl string, dialects []string, dialVecs []vector.Vec, costs []float64, workers int) ([]int, []float64, error) {
	return m.RankScoresPrepContext(ctx, m.X.Prepare(nl), dialects, dialVecs, costs, workers)
}

// rankOrder returns candidate indexes in descending score order using
// an insertion sort that is stable by original index, so exact score
// ties rank deterministically no matter how the scores were produced.
func rankOrder(scores []float64) []int {
	type scored struct {
		idx   int
		score float64
	}
	s := make([]scored, len(scores))
	for i, sc := range scores {
		s[i] = scored{idx: i, score: sc}
	}
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j].score > s[j-1].score; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
	out := make([]int, len(s))
	for i, sc := range s {
		out[i] = sc.idx
	}
	return out
}

// TrainingList is one listwise group: an NL query with candidate
// dialects and their binary (or graded) relevance labels. Costs, when
// non-nil, must align with Dialects and carries each candidate's
// estimated-cost feature, so training sees the same inputs serving
// will.
type TrainingList struct {
	NL       string
	Dialects []string
	Labels   []float64
	Costs    []float64
}

// Train fits the model on listwise groups.
func (m *Model) Train(lists []TrainingList, cfg nn.TrainConfig) []float64 {
	nnLists := make([]nn.List, 0, len(lists))
	for _, l := range lists {
		list := nn.List{Labels: l.Labels}
		p := m.X.Prepare(l.NL)
		for i, d := range l.Dialects {
			var cost float64
			if l.Costs != nil {
				cost = l.Costs[i]
			}
			list.Features = append(list.Features, m.X.FeaturesPrepCost(p, d, nil, cost))
		}
		nnLists = append(nnLists, list)
	}
	return m.Net.TrainListwise(nnLists, cfg)
}

// Rank scores all candidates for the NL query and returns the indexes in
// descending score order.
//
//garlint:allow ctxpass errlost -- compatibility wrapper over RankContext; the fresh root context and the dropped error are the legacy signature
func (m *Model) Rank(nl string, dialects []string) []int {
	order, _ := m.RankContext(context.Background(), nl, dialects)
	return order
}

// RankContext is Rank with cancellation: the context is checked around
// every forward pass, so a deadline set over a large candidate list
// aborts mid-scoring instead of completing the full scan.
func (m *Model) RankContext(ctx context.Context, nl string, dialects []string) ([]int, error) {
	order, _, err := m.RankScoresContext(ctx, nl, dialects, nil, nil, 1)
	return order, err
}
