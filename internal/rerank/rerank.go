// Package rerank implements GAR's second-stage re-ranking model
// (§III-C2). The paper fine-tunes a RoBERTa cross-encoder with a
// listwise NeuralNDCG objective; this package substitutes a feed-forward
// network over cross-pair interaction features (lexical overlap, IDF
// weighted coverage, n-gram and character similarity, length and value
// signals, and the retrieval encoder's cosine) trained with the ListNet
// listwise objective — same role: fine-grained relevance scoring of
// (NL query, dialect expression) pairs, trained per query list.
package rerank

import (
	"context"
	"math"
	"strings"

	"repro/internal/embed"
	"repro/internal/nn"
	"repro/internal/text"
)

// FeatureDim is the size of the cross-pair feature vector.
const FeatureDim = 20

// Extractor computes cross-pair features. The IDF statistics come from
// the dialect corpus; the encoder contributes its learned similarity.
type Extractor struct {
	IDF     *text.IDF
	Encoder *embed.Encoder
}

// superlatives are NL markers that align with ORDER BY ... LIMIT 1
// dialect phrases; mirrored against the dialect template vocabulary.
var superlatives = map[string]bool{
	"most": true, "highest": true, "largest": true, "biggest": true,
	"maximum": true, "max": true, "top": true, "best": true,
	"fewest": true, "lowest": true, "smallest": true, "minimum": true,
	"min": true, "least": true, "youngest": true, "oldest": true,
	"longest": true, "shortest": true, "earliest": true, "latest": true,
}

var negations = map[string]bool{
	"not": true, "no": true, "never": true, "without": true,
	"except": true, "exclude": true, "excluding": true,
}

var aggregates = map[string]bool{
	"number": true, "count": true, "many": true, "total": true,
	"sum": true, "average": true, "mean": true, "maximum": true,
	"minimum": true, "highest": true, "lowest": true,
}

// Features computes the feature vector for one (NL, dialect) pair.
func (x *Extractor) Features(nl, dial string) []float64 {
	nlToks := text.Tokenize(nl)
	dToks := text.Tokenize(dial)
	nlContent := text.CanonTokens(nl)
	dContent := text.CanonTokens(dial)

	f := make([]float64, 0, FeatureDim)
	// 0-2: token-set similarity.
	f = append(f, text.Jaccard(nlContent, dContent))
	f = append(f, text.OverlapRatio(nlContent, dContent))
	f = append(f, text.OverlapRatio(dContent, nlContent))
	// 3: IDF-weighted coverage of the NL query by the dialect.
	f = append(f, x.IDF.WeightedOverlap(nlContent, dContent))
	// 4: bigram overlap.
	f = append(f, text.Jaccard(text.NGrams(nlToks, 2), text.NGrams(dToks, 2)))
	// 5: character-trigram similarity (robust to morphology).
	f = append(f, text.Jaccard(charGrams(nlContent), charGrams(dContent)))
	// 6: normalized token edit distance.
	ed := text.EditDistance(nlToks, dToks)
	den := len(nlToks) + len(dToks)
	if den == 0 {
		den = 1
	}
	f = append(f, 1-float64(ed)/float64(den))
	// 7-8: length signals.
	f = append(f, lengthRatio(len(nlToks), len(dToks)))
	f = append(f, math.Abs(float64(len(nlToks)-len(dToks)))/16)
	// 9: numeric literal agreement.
	f = append(f, numberAgreement(nlToks, dToks))
	// 10-12: superlative / negation / aggregate marker agreement.
	f = append(f, markerAgreement(nlToks, dToks, superlatives))
	f = append(f, markerAgreement(nlToks, dToks, negations))
	f = append(f, markerAgreement(nlToks, dToks, aggregates))
	// 13: "for each"/"per" vs GROUP BY phrase agreement.
	f = append(f, boolFeat(hasGroupCue(nl) == strings.Contains(dial, "for each")))
	// 14: ordering cue agreement.
	f = append(f, boolFeat(hasOrderCue(nl) == strings.Contains(dial, "order of")))
	// 15: comparison cue agreement ("more than", "at least", ...).
	f = append(f, boolFeat(hasCompareCue(nl) == hasCompareCue(dial)))
	// 16: select-sentence agreement — coverage of the dialect's first
	// sentence (the projection) by the NL query; separates candidates
	// that differ only in the selected columns.
	firstSentence := dial
	if i := strings.IndexByte(dial, '.'); i > 0 {
		firstSentence = dial[:i]
	}
	f = append(f, text.OverlapRatio(text.CanonTokens(firstSentence), nlContent))
	// 17: leading-token agreement — the head of the question names the
	// projection ("find the AGE of ..."), so its first content tokens
	// must appear in the dialect's projection sentence. This separates
	// role-swapped candidates (ORDER BY age vs SELECT age) that share a
	// bag of words.
	f = append(f, text.OverlapRatio(headTokens(nlContent, 3), text.CanonTokens(firstSentence)))
	// 18: learned retrieval similarity.
	if x.Encoder != nil {
		f = append(f, float64(x.Encoder.Similarity(nl, dial)))
	} else {
		f = append(f, 0)
	}
	// 19: bias.
	f = append(f, 1)
	return f
}

// headTokens returns the first n tokens of the slice.
func headTokens(tokens []string, n int) []string {
	if len(tokens) < n {
		return tokens
	}
	return tokens[:n]
}

func charGrams(tokens []string) []string {
	var out []string
	for _, t := range tokens {
		out = append(out, text.CharNGrams(t, 3)...)
	}
	return out
}

func lengthRatio(a, b int) float64 {
	if a == 0 || b == 0 {
		return 0
	}
	if a > b {
		a, b = b, a
	}
	return float64(a) / float64(b)
}

func numberAgreement(a, b []string) float64 {
	na, nb := numbers(a), numbers(b)
	if len(na) == 0 && len(nb) == 0 {
		return 1
	}
	return text.Jaccard(na, nb)
}

func numbers(tokens []string) []string {
	var out []string
	for _, t := range tokens {
		if t[0] >= '0' && t[0] <= '9' {
			out = append(out, t)
		}
	}
	return out
}

func markerAgreement(a, b []string, set map[string]bool) float64 {
	ha, hb := hasAny(a, set), hasAny(b, set)
	if ha == hb {
		return 1
	}
	return 0
}

func hasAny(tokens []string, set map[string]bool) bool {
	for _, t := range tokens {
		if set[t] {
			return true
		}
	}
	return false
}

func hasGroupCue(s string) bool {
	ls := strings.ToLower(s)
	return strings.Contains(ls, "for each") || strings.Contains(ls, " per ") ||
		strings.Contains(ls, "each ") || strings.Contains(ls, "for every")
}

func hasOrderCue(s string) bool {
	ls := strings.ToLower(s)
	for _, cue := range []string{"order of", "sorted", "sort ", "ordered", "alphabetical",
		"ascending", "descending", "highest", "lowest", "most", "fewest", "largest",
		"smallest", "top ", "best", "oldest", "youngest", "longest", "shortest"} {
		if strings.Contains(ls, cue) {
			return true
		}
	}
	return false
}

func hasCompareCue(s string) bool {
	ls := strings.ToLower(s)
	for _, cue := range []string{"more than", "less than", "greater than", "at least",
		"at most", "above", "below", "over ", "under ", "exceed"} {
		if strings.Contains(ls, cue) {
			return true
		}
	}
	return false
}

func boolFeat(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// Model is the trained re-ranking model.
type Model struct {
	X   *Extractor
	Net *nn.MLP
}

// New builds an untrained re-ranker with the standard architecture
// (FeatureDim → 24 → 12 → 1).
func New(x *Extractor, seed int64) (*Model, error) {
	net, err := nn.NewMLP([]int{FeatureDim, 24, 12, 1}, seed)
	if err != nil {
		return nil, err
	}
	return &Model{X: x, Net: net}, nil
}

// Score returns the relevance score of a (NL, dialect) pair.
func (m *Model) Score(nl, dial string) float64 {
	return m.Net.Score(m.X.Features(nl, dial))
}

// TrainingList is one listwise group: an NL query with candidate
// dialects and their binary (or graded) relevance labels.
type TrainingList struct {
	NL       string
	Dialects []string
	Labels   []float64
}

// Train fits the model on listwise groups.
func (m *Model) Train(lists []TrainingList, cfg nn.TrainConfig) []float64 {
	nnLists := make([]nn.List, 0, len(lists))
	for _, l := range lists {
		list := nn.List{Labels: l.Labels}
		for _, d := range l.Dialects {
			list.Features = append(list.Features, m.X.Features(l.NL, d))
		}
		nnLists = append(nnLists, list)
	}
	return m.Net.TrainListwise(nnLists, cfg)
}

// Rank scores all candidates for the NL query and returns the indexes in
// descending score order.
//
//garlint:allow ctxpass -- compatibility wrapper over RankContext
func (m *Model) Rank(nl string, dialects []string) []int {
	order, _ := m.RankContext(context.Background(), nl, dialects)
	return order
}

// RankContext is Rank with cancellation: the context is checked before
// every forward pass, so a deadline set over a large candidate list
// aborts mid-scoring instead of completing the full scan.
func (m *Model) RankContext(ctx context.Context, nl string, dialects []string) ([]int, error) {
	type scored struct {
		idx   int
		score float64
	}
	s := make([]scored, len(dialects))
	for i, d := range dialects {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		s[i] = scored{idx: i, score: m.Score(nl, d)}
	}
	// Insertion sort keeps determinism on ties (stable by index).
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j].score > s[j-1].score; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
	out := make([]int, len(s))
	for i, sc := range s {
		out[i] = sc.idx
	}
	return out, nil
}
