package rerank_test

import (
	"testing"

	"repro/internal/embed"
	"repro/internal/nn"
	"repro/internal/rerank"
	"repro/internal/text"
)

func newExtractor() *rerank.Extractor {
	corpus := []string{
		"Find the name of employee.",
		"Find the age of employee.",
		"Find the number of employees.",
		"Find the name of employee. Return the top one result in descending order of the age of employee.",
		"Find the name of employee. Return results only for employee that age is greater than value.",
	}
	enc := embed.NewEncoder(embed.Config{Seed: 1})
	enc.FitIDF(corpus)
	return &rerank.Extractor{IDF: text.NewIDF(corpus), Encoder: enc}
}

func TestFeatureShape(t *testing.T) {
	x := newExtractor()
	f := x.Features("who is the oldest employee", "Find the name of employee.")
	if len(f) != rerank.FeatureDim {
		t.Fatalf("feature dim %d, want %d", len(f), rerank.FeatureDim)
	}
	for i, v := range f {
		if v != v { // NaN check
			t.Errorf("feature %d is NaN", i)
		}
	}
	// Empty inputs must not panic or produce NaN.
	f = x.Features("", "")
	for i, v := range f {
		if v != v {
			t.Errorf("empty-input feature %d is NaN", i)
		}
	}
}

func TestFeaturesFavorMatchingDialect(t *testing.T) {
	x := newExtractor()
	nl := "who is the oldest employee"
	good := "Find the name of employee. Return the top one result in descending order of the age of employee."
	bad := "Find the number of employees."
	fg := x.Features(nl, good)
	fb := x.Features(nl, bad)
	// The ordering-cue agreement feature (index 14) must separate them.
	if fg[14] <= fb[14] {
		t.Errorf("order cue feature does not separate: good %v bad %v", fg[14], fb[14])
	}
}

func TestSuperlativeAgreement(t *testing.T) {
	x := newExtractor()
	withCue := x.Features("the highest bonus", "Return the top one result in descending order of one bonus.")
	withoutCue := x.Features("the highest bonus", "Find the bonus of evaluation.")
	if withCue[10] != 1 {
		t.Errorf("superlative agreement should be 1: %v", withCue[10])
	}
	if withoutCue[10] != 0 {
		t.Errorf("superlative disagreement should be 0: %v", withoutCue[10])
	}
}

func trainingLists() []rerank.TrainingList {
	return []rerank.TrainingList{
		{
			NL: "who is the oldest employee",
			Dialects: []string{
				"Find the name of employee. Return the top one result in descending order of the age of employee.",
				"Find the name of employee.",
				"Find the number of employees.",
			},
			Labels: []float64{1, 0, 0},
		},
		{
			NL: "how many employees are there",
			Dialects: []string{
				"Find the number of employees.",
				"Find the age of employee.",
				"Find the name of employee. Return results only for employee that age is greater than value.",
			},
			Labels: []float64{1, 0, 0},
		},
		{
			NL: "employees older than 30",
			Dialects: []string{
				"Find the name of employee. Return results only for employee that age is greater than value.",
				"Find the name of employee.",
				"Find the number of employees.",
			},
			Labels: []float64{1, 0, 0},
		},
		{
			NL: "list employee ages",
			Dialects: []string{
				"Find the age of employee.",
				"Find the number of employees.",
				"Find the name of employee. Return the top one result in descending order of the age of employee.",
			},
			Labels: []float64{1, 0, 0},
		},
	}
}

func TestTrainAndRank(t *testing.T) {
	x := newExtractor()
	m, err := rerank.New(x, 2)
	if err != nil {
		t.Fatalf("rerank.New: %v", err)
	}
	lists := trainingLists()
	losses := m.Train(lists, nn.TrainConfig{Epochs: 30, LR: 0.01, Seed: 3})
	if losses[len(losses)-1] >= losses[0] {
		t.Errorf("training loss did not decrease: %v...%v", losses[0], losses[len(losses)-1])
	}
	correct := 0
	for _, l := range lists {
		order := m.Rank(l.NL, l.Dialects)
		if l.Labels[order[0]] == 1 {
			correct++
		}
	}
	if correct < 3 {
		t.Errorf("re-ranker got only %d/4 training lists right", correct)
	}
}

func TestRankDeterministicAndComplete(t *testing.T) {
	x := newExtractor()
	m, err := rerank.New(x, 5)
	if err != nil {
		t.Fatalf("rerank.New: %v", err)
	}
	dialects := []string{"a b c", "d e f", "a b d"}
	o1 := m.Rank("a b", dialects)
	o2 := m.Rank("a b", dialects)
	if len(o1) != 3 {
		t.Fatalf("rank returned %d indexes", len(o1))
	}
	seen := map[int]bool{}
	for i := range o1 {
		if o1[i] != o2[i] {
			t.Fatal("rank not deterministic")
		}
		seen[o1[i]] = true
	}
	if len(seen) != 3 {
		t.Error("rank is not a permutation")
	}
}
