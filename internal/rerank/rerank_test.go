package rerank_test

import (
	"context"
	"testing"

	"repro/internal/embed"
	"repro/internal/nn"
	"repro/internal/rerank"
	"repro/internal/text"
	"repro/internal/vector"
)

func newExtractor() *rerank.Extractor {
	corpus := []string{
		"Find the name of employee.",
		"Find the age of employee.",
		"Find the number of employees.",
		"Find the name of employee. Return the top one result in descending order of the age of employee.",
		"Find the name of employee. Return results only for employee that age is greater than value.",
	}
	enc := embed.NewEncoder(embed.Config{Seed: 1})
	enc.FitIDF(corpus)
	return &rerank.Extractor{IDF: text.NewIDF(corpus), Encoder: enc}
}

func TestFeatureShape(t *testing.T) {
	x := newExtractor()
	f := x.Features("who is the oldest employee", "Find the name of employee.")
	if len(f) != rerank.FeatureDim {
		t.Fatalf("feature dim %d, want %d", len(f), rerank.FeatureDim)
	}
	for i, v := range f {
		if v != v { // NaN check
			t.Errorf("feature %d is NaN", i)
		}
	}
	// Empty inputs must not panic or produce NaN.
	f = x.Features("", "")
	for i, v := range f {
		if v != v {
			t.Errorf("empty-input feature %d is NaN", i)
		}
	}
}

func TestFeaturesFavorMatchingDialect(t *testing.T) {
	x := newExtractor()
	nl := "who is the oldest employee"
	good := "Find the name of employee. Return the top one result in descending order of the age of employee."
	bad := "Find the number of employees."
	fg := x.Features(nl, good)
	fb := x.Features(nl, bad)
	// The ordering-cue agreement feature (index 14) must separate them.
	if fg[14] <= fb[14] {
		t.Errorf("order cue feature does not separate: good %v bad %v", fg[14], fb[14])
	}
}

func TestSuperlativeAgreement(t *testing.T) {
	x := newExtractor()
	withCue := x.Features("the highest bonus", "Return the top one result in descending order of one bonus.")
	withoutCue := x.Features("the highest bonus", "Find the bonus of evaluation.")
	if withCue[10] != 1 {
		t.Errorf("superlative agreement should be 1: %v", withCue[10])
	}
	if withoutCue[10] != 0 {
		t.Errorf("superlative disagreement should be 0: %v", withoutCue[10])
	}
}

func trainingLists() []rerank.TrainingList {
	return []rerank.TrainingList{
		{
			NL: "who is the oldest employee",
			Dialects: []string{
				"Find the name of employee. Return the top one result in descending order of the age of employee.",
				"Find the name of employee.",
				"Find the number of employees.",
			},
			Labels: []float64{1, 0, 0},
		},
		{
			NL: "how many employees are there",
			Dialects: []string{
				"Find the number of employees.",
				"Find the age of employee.",
				"Find the name of employee. Return results only for employee that age is greater than value.",
			},
			Labels: []float64{1, 0, 0},
		},
		{
			NL: "employees older than 30",
			Dialects: []string{
				"Find the name of employee. Return results only for employee that age is greater than value.",
				"Find the name of employee.",
				"Find the number of employees.",
			},
			Labels: []float64{1, 0, 0},
		},
		{
			NL: "list employee ages",
			Dialects: []string{
				"Find the age of employee.",
				"Find the number of employees.",
				"Find the name of employee. Return the top one result in descending order of the age of employee.",
			},
			Labels: []float64{1, 0, 0},
		},
	}
}

func TestTrainAndRank(t *testing.T) {
	x := newExtractor()
	m, err := rerank.New(x, 2)
	if err != nil {
		t.Fatalf("rerank.New: %v", err)
	}
	lists := trainingLists()
	losses := m.Train(lists, nn.TrainConfig{Epochs: 30, LR: 0.01, Seed: 3})
	if losses[len(losses)-1] >= losses[0] {
		t.Errorf("training loss did not decrease: %v...%v", losses[0], losses[len(losses)-1])
	}
	correct := 0
	for _, l := range lists {
		order := m.Rank(l.NL, l.Dialects)
		if l.Labels[order[0]] == 1 {
			correct++
		}
	}
	if correct < 3 {
		t.Errorf("re-ranker got only %d/4 training lists right", correct)
	}
}

// TestPrepPathBitIdentical pins the amortized scoring path — prepared
// NL-side features plus precomputed dialect embeddings — to the legacy
// per-pair path, feature by feature and bit by bit. The translate hot
// path's determinism guarantee rests on this equivalence.
func TestPrepPathBitIdentical(t *testing.T) {
	x := newExtractor()
	nls := []string{
		"who is the oldest employee",
		"employees older than 30",
		"",
		"how many employees are there",
	}
	dialects := []string{
		"Find the name of employee. Return the top one result in descending order of the age of employee.",
		"Find the number of employees.",
		"",
		"Find the name of employee. Return results only for employee that age is greater than value.",
	}
	dialVecs := make([]vector.Vec, len(dialects))
	for i, d := range dialects {
		dialVecs[i] = x.Encoder.Encode(d)
	}
	for _, nl := range nls {
		plain := x.Prepare(nl)
		withVec := x.PrepareVec(nl, x.Encoder.Encode(nl))
		for di, d := range dialects {
			want := x.Features(nl, d)
			for name, got := range map[string][]float64{
				"Prepare":            x.FeaturesPrep(plain, d, nil),
				"Prepare+dialVec":    x.FeaturesPrep(plain, d, dialVecs[di]),
				"PrepareVec+dialVec": x.FeaturesPrep(withVec, d, dialVecs[di]),
			} {
				if len(got) != len(want) {
					t.Fatalf("%s: dim %d vs %d", name, len(got), len(want))
				}
				for fi := range want {
					if got[fi] != want[fi] {
						t.Errorf("nl=%q dial=%q %s feature %d: %v != %v",
							nl, d, name, fi, got[fi], want[fi])
					}
				}
			}
		}
	}
}

// TestScoreBatchMatchesScore pins batched (and parallel) scoring and
// ranking to the sequential per-pair API.
func TestScoreBatchMatchesScore(t *testing.T) {
	x := newExtractor()
	m, err := rerank.New(x, 7)
	if err != nil {
		t.Fatalf("rerank.New: %v", err)
	}
	nl := "who is the oldest employee"
	dialects := []string{
		"Find the name of employee. Return the top one result in descending order of the age of employee.",
		"Find the name of employee.",
		"Find the number of employees.",
		"Find the age of employee.",
	}
	dialVecs := make([]vector.Vec, len(dialects))
	for i, d := range dialects {
		dialVecs[i] = x.Encoder.Encode(d)
	}
	want := make([]float64, len(dialects))
	for i, d := range dialects {
		want[i] = m.Score(nl, d)
	}
	wantOrder := m.Rank(nl, dialects)
	for _, workers := range []int{1, 4} {
		order, scores, err := m.RankScoresContext(context.Background(), nl, dialects, dialVecs, nil, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range want {
			if scores[i] != want[i] {
				t.Errorf("workers=%d score %d: %v != %v", workers, i, scores[i], want[i])
			}
			if order[i] != wantOrder[i] {
				t.Errorf("workers=%d order %d: %d != %d", workers, i, order[i], wantOrder[i])
			}
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := m.RankScoresContext(ctx, nl, dialects, nil, nil, 2); err == nil {
		t.Error("cancelled rank must fail")
	}
}

func TestRankDeterministicAndComplete(t *testing.T) {
	x := newExtractor()
	m, err := rerank.New(x, 5)
	if err != nil {
		t.Fatalf("rerank.New: %v", err)
	}
	dialects := []string{"a b c", "d e f", "a b d"}
	o1 := m.Rank("a b", dialects)
	o2 := m.Rank("a b", dialects)
	if len(o1) != 3 {
		t.Fatalf("rank returned %d indexes", len(o1))
	}
	seen := map[int]bool{}
	for i := range o1 {
		if o1[i] != o2[i] {
			t.Fatal("rank not deterministic")
		}
		seen[o1[i]] = true
	}
	if len(seen) != 3 {
		t.Error("rank is not a permutation")
	}
}

// TestCostFeaturePath pins the cost-feature plumbing: ScorePrep is
// ScorePrepCost at zero cost, a non-zero cost lands in feature 19 and
// changes the score, and batched scoring with a costs slice matches the
// sequential per-pair path bit for bit.
func TestCostFeaturePath(t *testing.T) {
	x := newExtractor()
	m, err := rerank.New(x, 11)
	if err != nil {
		t.Fatal(err)
	}
	nl := "who is the oldest employee"
	dialects := []string{
		"Find the name of employee. Return the top one result in descending order of the age of employee.",
		"Find the number of employees.",
		"Find the age of employee.",
	}
	costs := []float64{0.2, 0.8, 0}
	p := x.Prepare(nl)

	for i, d := range dialects {
		f := x.FeaturesPrepCost(p, d, nil, costs[i])
		if got := f[19]; got != costs[i] {
			t.Errorf("feature 19 = %v, want cost %v", got, costs[i])
		}
		if got, want := m.ScorePrep(p, d, nil), m.ScorePrepCost(p, d, nil, 0); got != want {
			t.Errorf("ScorePrep %v != ScorePrepCost(0) %v", got, want)
		}
	}
	if m.ScorePrepCost(p, dialects[1], nil, 0.8) == m.ScorePrepCost(p, dialects[1], nil, 0) {
		t.Error("non-zero cost did not move the score")
	}

	batch, err := m.ScoreBatchContext(context.Background(), p, dialects, nil, costs, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range dialects {
		if want := m.ScorePrepCost(p, d, nil, costs[i]); batch[i] != want {
			t.Errorf("batched score %d: %v != sequential %v", i, batch[i], want)
		}
	}
}
