package dialect_test

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/dialect"
	"repro/internal/schema"
	"repro/internal/schema/schematest"
	"repro/internal/sqlparse"
)

var update = flag.Bool("update", false, "rewrite .golden files with current builder output")

// goldenCase names one dialect rendering pinned in testdata/. Cases are
// grouped per component type so a change in any clause generator shows
// up as a focused golden diff rather than a scattered substring failure.
type goldenCase struct {
	name string // golden file stem
	db   func() *schema.Database
	garj bool // use join annotations (GAR-J)
	sql  string
}

func goldenCases() []goldenCase {
	emp := schematest.Employee
	fl := schematest.Flights
	return []goldenCase{
		// Projection components.
		{name: "select_columns", db: emp, sql: "SELECT name, age FROM employee"},
		{name: "select_distinct", db: emp, sql: "SELECT DISTINCT city FROM employee"},
		{name: "select_star", db: emp, sql: "SELECT * FROM employee"},
		// Aggregate components.
		{name: "agg_count_star", db: emp, sql: "SELECT COUNT(*) FROM employee"},
		{name: "agg_count_distinct", db: emp, sql: "SELECT COUNT(DISTINCT city) FROM employee"},
		{name: "agg_sum_avg", db: emp, sql: "SELECT SUM(bonus), AVG(bonus) FROM evaluation"},
		{name: "agg_min_max", db: emp, sql: "SELECT MIN(age), MAX(age) FROM employee"},
		// Predicate components.
		{name: "where_compare", db: emp, sql: "SELECT name FROM employee WHERE age >= 30 AND city != 'Austin'"},
		{name: "where_or_not", db: emp, sql: "SELECT name FROM employee WHERE NOT age < 30 OR city = 'Austin'"},
		{name: "where_between_like", db: emp, sql: "SELECT name FROM employee WHERE age BETWEEN 20 AND 30 AND name LIKE 'A'"},
		{name: "where_in_subquery", db: emp, sql: "SELECT name FROM employee WHERE employee_id IN (SELECT employee_id FROM evaluation)"},
		{name: "where_exists", db: emp, sql: "SELECT name FROM employee WHERE EXISTS (SELECT * FROM evaluation)"},
		{name: "where_scalar_subquery", db: emp, sql: "SELECT name FROM employee WHERE age > (SELECT AVG(age) FROM employee)"},
		// Shape components: grouping, ordering, limiting.
		{name: "group_by", db: emp, sql: "SELECT city, COUNT(*) FROM employee GROUP BY city"},
		{name: "group_having", db: emp, sql: "SELECT city FROM employee GROUP BY city HAVING COUNT(*) > 2"},
		{name: "order_limit", db: emp, sql: "SELECT name FROM employee ORDER BY age DESC LIMIT 3"},
		// Set operations.
		{name: "set_union", db: emp, sql: "SELECT name FROM employee UNION SELECT shop_name FROM shop"},
		{name: "set_intersect", db: emp, sql: "SELECT city FROM employee INTERSECT SELECT city FROM employee"},
		{name: "set_except", db: emp, sql: "SELECT city FROM employee EXCEPT SELECT city FROM employee"},
		// Derived tables.
		{name: "from_subquery", db: emp, sql: "SELECT name FROM (SELECT name FROM employee) AS sub"},
		// Join components: plain GAR vs GAR-J annotations, both join
		// directions (the Fig. 7 distinction join annotations exist for).
		{name: "join_compound_key", db: emp, sql: "SELECT T1.name FROM employee AS T1 JOIN evaluation AS T2 ON T1.employee_id = T2.employee_id ORDER BY T2.bonus DESC LIMIT 1"},
		{name: "join_gar_dest", db: fl, sql: "SELECT T1.city FROM airports AS T1 JOIN flights AS T2 ON T1.airportCode = T2.destAirport GROUP BY T1.city ORDER BY COUNT(*) DESC LIMIT 1"},
		{name: "join_garj_dest", db: fl, garj: true, sql: "SELECT T1.city FROM airports AS T1 JOIN flights AS T2 ON T1.airportCode = T2.destAirport GROUP BY T1.city ORDER BY COUNT(*) DESC LIMIT 1"},
		{name: "join_garj_source", db: fl, garj: true, sql: "SELECT T1.city FROM airports AS T1 JOIN flights AS T2 ON T1.airportCode = T2.sourceAirport GROUP BY T1.city ORDER BY COUNT(*) DESC LIMIT 1"},
	}
}

// TestGoldenDialects pins the full dialect expression for one query per
// component type. Run with -update to rewrite testdata after an
// intentional builder change; the diff then documents exactly which
// phrasings moved.
func TestGoldenDialects(t *testing.T) {
	for _, tc := range goldenCases() {
		t.Run(tc.name, func(t *testing.T) {
			db := tc.db()
			b := dialect.New(db)
			if tc.garj {
				b = dialect.NewJ(db)
			}
			q := sqlparse.MustParse(tc.sql)
			if err := db.Bind(q); err != nil {
				t.Fatalf("bind: %v", err)
			}
			got := b.Express(q) + "\n"
			path := filepath.Join("testdata", tc.name+".golden")
			if *update {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run: go test ./internal/dialect/ -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("dialect drifted from %s:\n got: %s\nwant: %s", path, got, want)
			}
		})
	}
}
