// Package dialect implements GAR's template-assisted dialect builder
// (§III-B): a deterministic SQL-to-NL translation that renders each SQL
// query as a stilted but semantically faithful "dialect expression". The
// builder follows the GRAPH-NL style of the paper: each clause subtree of
// the parse tree maps to an NL phrase, phrases are concatenated in
// pre-order, schema annotations provide the element labels, and table
// key information disambiguates per-row semantics ("one bonus" for a
// compound-key table rather than "the bonus").
//
// With UseJoinAnnotations set (GAR-J, §IV), the builder additionally
// labels join subtrees with the manual join annotations of the database:
// the join path is verbalized by the annotation's Description, and
// asterisks (COUNT(*)) are verbalized by the annotation's TableKeys.
package dialect

import (
	"strings"

	"repro/internal/schema"
	"repro/internal/sqlast"
)

// Builder renders SQL queries as dialect expressions for one database.
type Builder struct {
	DB *schema.Database
	// UseJoinAnnotations enables GAR-J mode: join paths and asterisks
	// are labelled with the database's join annotations when available.
	UseJoinAnnotations bool
}

// New returns a plain GAR dialect builder for the database.
func New(db *schema.Database) *Builder { return &Builder{DB: db} }

// NewJ returns a GAR-J dialect builder that uses join annotations.
func NewJ(db *schema.Database) *Builder {
	return &Builder{DB: db, UseJoinAnnotations: true}
}

// Express renders the query as a dialect expression. The query should be
// bound against the builder's database; unresolvable elements fall back
// to their raw identifiers, so Express never fails.
func (b *Builder) Express(q *sqlast.Query) string {
	var sb strings.Builder
	b.query(&sb, q)
	return strings.TrimSpace(sb.String())
}

func (b *Builder) query(sb *strings.Builder, q *sqlast.Query) {
	b.selectBlock(sb, q.Select)
	if q.Op != sqlast.SetNone {
		switch q.Op {
		case sqlast.Intersect:
			sb.WriteString(" Keep only the results that also appear in: ")
		case sqlast.Union:
			sb.WriteString(" Also include the results of: ")
		case sqlast.Except:
			sb.WriteString(" Exclude the results of: ")
		}
		b.query(sb, q.Right)
	}
}

func (b *Builder) selectBlock(sb *strings.Builder, s *sqlast.Select) {
	ctx := b.newContext(s)

	// Sentence 1: projection over the FROM phrase.
	sb.WriteString("Find ")
	if s.Distinct {
		sb.WriteString("the distinct ")
	}
	var items []string
	for _, it := range s.Items {
		items = append(items, b.valuePhrase(it.Expr, ctx))
	}
	sb.WriteString(joinAnd(items))
	// Column phrases already name their owning table ("the name of
	// employee"), so the FROM clause is verbalized separately only when
	// it carries join or derived-table information, matching the paper's
	// "Find the city of airports regarding to airports with flights."
	if ctx.fromSuffix != "" {
		sb.WriteString(" regarding to ")
		sb.WriteString(ctx.fromSuffix)
	}
	sb.WriteString(".")

	// Sentence 2: filtering.
	if s.Where != nil {
		sb.WriteString(" Return results only for ")
		sb.WriteString(b.condPhrase(s.Where, ctx))
		sb.WriteString(".")
	}

	// Sentence 3: grouping, ordering, limiting.
	if len(s.OrderBy) > 0 || len(s.GroupBy) > 0 || s.Having != nil {
		sb.WriteString(" ")
		sb.WriteString(b.shapeSentence(s, ctx))
	}
}

// shapeSentence renders GROUP BY / HAVING / ORDER BY / LIMIT, following
// the paper's example: "Return the top one result for each city of
// airports in descending order of the number of flights."
func (b *Builder) shapeSentence(s *sqlast.Select, ctx *context) string {
	var parts []string
	if s.Limit > 0 {
		if s.Limit == 1 {
			parts = append(parts, "Return the top one result")
		} else {
			parts = append(parts, "Return the top "+numWord(s.Limit)+" results")
		}
	} else {
		parts = append(parts, "Return results")
	}
	if s.Having != nil {
		parts = append(parts, "only for "+b.condPhrase(s.Having, ctx))
	}
	if len(s.GroupBy) > 0 {
		var keys []string
		for _, g := range s.GroupBy {
			// "for each city of airports", not "for each the city ...".
			keys = append(keys, strings.TrimPrefix(b.columnPhrase(g, ctx), "the "))
		}
		parts = append(parts, "for each "+joinAnd(keys))
	}
	if len(s.OrderBy) > 0 {
		var keys []string
		desc := s.OrderBy[0].Desc
		for _, o := range s.OrderBy {
			keys = append(keys, b.valuePhrase(o.Expr, ctx))
		}
		dir := "ascending"
		if desc {
			dir = "descending"
		}
		parts = append(parts, "in "+dir+" order of "+joinAnd(keys))
	}
	return strings.Join(parts, " ") + "."
}

// context carries the per-block schema information the phrase generators
// need: the FROM phrase, the join annotation (if matched) and the noun
// describing one row of the FROM result.
type context struct {
	sel        *sqlast.Select
	fromSuffix string // join/derived phrase after "regarding to"; empty for plain tables
	rowNoun    string // what one row of the FROM result is
	joined     bool
	tablesNL   string // concatenated table NLs, e.g. "employee evaluation"
}

func (b *Builder) newContext(s *sqlast.Select) *context {
	ctx := &context{sel: s}
	tables := s.From.Tables
	switch {
	case len(tables) == 1 && tables[0].Sub != nil:
		ctx.fromSuffix = "the results of (" + b.subExpress(tables[0].Sub) + ")"
		ctx.rowNoun = "result"
	case len(tables) == 1:
		t := b.DB.Table(tables[0].Name)
		name := tables[0].Name
		if t != nil {
			name = t.NL()
		}
		ctx.rowNoun = name
		ctx.tablesNL = name
	default:
		ctx.joined = true
		var names []string
		for _, tr := range tables {
			if tr.Sub != nil {
				names = append(names, "subquery")
				continue
			}
			if t := b.DB.Table(tr.Name); t != nil {
				names = append(names, t.NL())
			} else {
				names = append(names, tr.Name)
			}
		}
		ctx.tablesNL = strings.Join(names, " ")
		if b.UseJoinAnnotations {
			edges := schema.JoinEdges(b.DB, s)
			if ann := b.DB.FindJoinAnnotationSubset(edges); ann != nil {
				ctx.fromSuffix = ann.Description
				ctx.rowNoun = ann.TableKeys
				return ctx
			}
		}
		// Plain GAR verbalizes the join mechanically from the table
		// names: "airports with flights".
		ctx.fromSuffix = strings.Join(names, " with ")
		ctx.rowNoun = ctx.fromSuffix
	}
	return ctx
}

// subExpress renders a nested query (subquery or compound side) inline.
func (b *Builder) subExpress(q *sqlast.Query) string {
	var sb strings.Builder
	b.query(&sb, q)
	return strings.TrimSpace(sb.String())
}

// valuePhrase renders a projection or ordering expression.
func (b *Builder) valuePhrase(e sqlast.Expr, ctx *context) string {
	switch x := e.(type) {
	case *sqlast.ColumnRef:
		if x.IsStar() {
			return "all information of " + ctx.rowNoun
		}
		return b.columnPhrase(x, ctx)
	case *sqlast.Agg:
		return b.aggPhrase(x, ctx)
	case *sqlast.Lit:
		return litPhrase(x)
	case *sqlast.Subquery:
		return "the result of (" + b.subExpress(x.Q) + ")"
	default:
		return sqlast.ExprString(e)
	}
}

// columnPhrase renders a column reference with its schema label and the
// key-aware "one X" semantics: a non-key column of a compound-key table
// denotes one observation, not a property of the entity.
func (b *Builder) columnPhrase(c *sqlast.ColumnRef, ctx *context) string {
	t, col := b.DB.ResolveColumn(ctx.sel, c)
	if col == nil {
		if c.Table != "" {
			return "the " + strings.ToLower(c.Column) + " of " + strings.ToLower(c.Table)
		}
		return "the " + strings.ToLower(c.Column)
	}
	owner := t.NL()
	if ctx.joined && t.HasCompoundKey() && !t.IsKey(col.Name) {
		// The paper's "one bonus of the employee evaluation".
		return "one " + col.NL() + " of the " + ctx.tablesNL
	}
	return "the " + col.NL() + " of " + owner
}

// aggPhrase renders an aggregate application.
func (b *Builder) aggPhrase(a *sqlast.Agg, ctx *context) string {
	if a.Arg.IsStar() {
		noun := ctx.rowNoun
		if b.UseJoinAnnotations || !ctx.joined {
			noun = plural(noun)
		}
		return "the number of " + noun
	}
	inner := strings.TrimPrefix(b.columnPhrase(a.Arg, ctx), "the ")
	distinct := ""
	if a.Distinct {
		distinct = "distinct "
	}
	switch a.Func {
	case sqlast.Count:
		return "the number of " + distinct + inner
	case sqlast.Sum:
		return "the total " + distinct + inner
	case sqlast.Avg:
		return "the average " + distinct + inner
	case sqlast.Min:
		return "the minimum " + distinct + inner
	default:
		return "the maximum " + distinct + inner
	}
}

// condPhrase renders a boolean condition.
func (b *Builder) condPhrase(e sqlast.Expr, ctx *context) string {
	switch x := e.(type) {
	case *sqlast.Binary:
		switch x.Op {
		case "AND":
			return b.condPhrase(x.L, ctx) + " and " + b.condPhrase(x.R, ctx)
		case "OR":
			return b.condPhrase(x.L, ctx) + " or " + b.condPhrase(x.R, ctx)
		}
		return b.comparisonPhrase(x, ctx)
	case *sqlast.Not:
		return "not " + b.condPhrase(x.X, ctx)
	case *sqlast.Between:
		verb := "is between"
		if x.Negate {
			verb = "is not between"
		}
		return b.subjectPhrase(x.X, ctx) + " " + verb + " " +
			b.valueOperand(x.Lo, ctx) + " and " + b.valueOperand(x.Hi, ctx)
	case *sqlast.In:
		verb := "is one of"
		if x.Negate {
			verb = "is not one of"
		}
		return b.subjectPhrase(x.X, ctx) + " " + verb + " (" + b.subExpress(x.Sub) + ")"
	case *sqlast.Exists:
		if x.Negate {
			return "there is no result for (" + b.subExpress(x.Sub) + ")"
		}
		return "there is some result for (" + b.subExpress(x.Sub) + ")"
	default:
		return b.subjectPhrase(e, ctx)
	}
}

func (b *Builder) comparisonPhrase(x *sqlast.Binary, ctx *context) string {
	subject := b.subjectPhrase(x.L, ctx)
	object := b.valueOperand(x.R, ctx)
	switch x.Op {
	case "=":
		return subject + " is " + object
	case "!=":
		return subject + " is not " + object
	case "<":
		return subject + " is less than " + object
	case "<=":
		return subject + " is at most " + object
	case ">":
		return subject + " is greater than " + object
	case ">=":
		return subject + " is at least " + object
	case "LIKE":
		return subject + " contains " + object
	case "NOT LIKE":
		return subject + " does not contain " + object
	default:
		return subject + " " + strings.ToLower(x.Op) + " " + object
	}
}

// subjectPhrase renders the left-hand side of a predicate. Following the
// paper's GEO example ("river that length is ..."), the subject names
// the entity and the column: "<table> that <column>".
func (b *Builder) subjectPhrase(e sqlast.Expr, ctx *context) string {
	switch x := e.(type) {
	case *sqlast.ColumnRef:
		t, col := b.DB.ResolveColumn(ctx.sel, x)
		if col == nil {
			return strings.ToLower(x.Column)
		}
		return t.NL() + " that " + col.NL()
	case *sqlast.Agg:
		return b.aggPhrase(x, ctx)
	default:
		return b.valuePhrase(e, ctx)
	}
}

// valueOperand renders the right-hand side of a predicate.
func (b *Builder) valueOperand(e sqlast.Expr, ctx *context) string {
	switch x := e.(type) {
	case *sqlast.Lit:
		return litPhrase(x)
	case *sqlast.ColumnRef:
		return b.columnPhrase(x, ctx)
	case *sqlast.Subquery:
		return b.scalarSubPhrase(x.Q)
	case *sqlast.Agg:
		return b.aggPhrase(x, ctx)
	default:
		return sqlast.ExprString(e)
	}
}

// scalarSubPhrase inlines a scalar subquery the way the paper's GEO
// example does: "the maximum length of river that river that traverse is
// California" — the subquery's select phrase followed by its filter.
func (b *Builder) scalarSubPhrase(q *sqlast.Query) string {
	s := q.Select
	ctx := b.newContext(s)
	if len(s.Items) != 1 {
		return "(" + b.subExpress(q) + ")"
	}
	phrase := b.valuePhrase(s.Items[0].Expr, ctx)
	if s.Where != nil {
		phrase += " that " + b.condPhrase(s.Where, ctx)
	}
	return phrase
}

func litPhrase(l *sqlast.Lit) string {
	if l.Kind == sqlast.PlaceholderLit {
		return sqlast.PlaceholderValue
	}
	return l.Text
}

// joinAnd joins phrases with commas and no conjunction, matching the
// paper's flat enumeration style ("the capacity of stadium, the name of
// stadium").
func joinAnd(items []string) string { return strings.Join(items, ", ") }

// plural naively pluralizes a noun for "the number of X" phrases.
func plural(s string) string {
	if s == "" || strings.HasSuffix(s, "s") {
		return s
	}
	if strings.HasSuffix(s, "y") && len(s) > 1 && !isVowel(s[len(s)-2]) {
		return s[:len(s)-1] + "ies"
	}
	return s + "s"
}

func isVowel(c byte) bool {
	switch c {
	case 'a', 'e', 'i', 'o', 'u':
		return true
	}
	return false
}

// numWord spells out small limit counts; larger ones stay numeric.
func numWord(n int) string {
	words := []string{"zero", "one", "two", "three", "four", "five", "six", "seven", "eight", "nine", "ten"}
	if n >= 0 && n < len(words) {
		return words[n]
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}
