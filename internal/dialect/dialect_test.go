package dialect_test

import (
	"strings"
	"testing"

	"repro/internal/dialect"
	"repro/internal/schema/schematest"
	"repro/internal/sqlast"
	"repro/internal/sqlparse"
)

func express(t *testing.T, b *dialect.Builder, src string) string {
	t.Helper()
	q := sqlparse.MustParse(src)
	if err := b.DB.Bind(q); err != nil {
		t.Fatalf("bind %q: %v", src, err)
	}
	return b.Express(q)
}

func TestFig1Dialect(t *testing.T) {
	// The paper's running example: the gold query of Fig. 1 must produce
	// the "one bonus" phrasing because evaluation has a compound key.
	b := dialect.New(schematest.Employee())
	got := express(t, b, `SELECT T1.name FROM employee AS T1
		JOIN evaluation AS T2 ON T1.employee_id = T2.employee_id
		ORDER BY T2.bonus DESC LIMIT 1`)
	for _, want := range []string{
		"Find the name of employee",
		"regarding to employee with evaluation",
		"Return the top one result",
		"descending order of one bonus of the employee evaluation",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("dialect missing %q:\n%s", want, got)
		}
	}
	if strings.Contains(got, "total bonus") || strings.Contains(got, "all bonus") {
		t.Errorf("dialect must not claim total/all bonus: %s", got)
	}
}

func TestOneVsTheSemantics(t *testing.T) {
	b := dialect.New(schematest.Employee())
	// bonus inside a join: compound key of evaluation → "one bonus".
	joined := express(t, b, `SELECT T2.bonus FROM employee AS T1
		JOIN evaluation AS T2 ON T1.employee_id = T2.employee_id`)
	if !strings.Contains(joined, "one bonus") {
		t.Errorf("expected 'one bonus' in joined context: %s", joined)
	}
	// name of employee (single-column key) → "the name".
	plain := express(t, b, "SELECT name FROM employee")
	if !strings.Contains(plain, "the name of employee") {
		t.Errorf("expected 'the name of employee': %s", plain)
	}
}

func TestGARJFig7Dialect(t *testing.T) {
	db := schematest.Flights()
	gold := `SELECT T1.city FROM airports AS T1
		JOIN flights AS T2 ON T1.airportCode = T2.destAirport
		GROUP BY T1.city ORDER BY COUNT(*) DESC LIMIT 1`

	// Plain GAR: mechanical join phrase; COUNT(*) counts the join noun.
	gar := express(t, dialect.New(db), gold)
	if !strings.Contains(gar, "regarding to airports with flights") {
		t.Errorf("GAR join phrase wrong: %s", gar)
	}
	if !strings.Contains(gar, "the number of airports with flights") {
		t.Errorf("GAR asterisk phrase wrong: %s", gar)
	}

	// GAR-J: annotation description and TableKeys drive the phrasing.
	garj := express(t, dialect.NewJ(db), gold)
	if !strings.Contains(garj, "the flights arrive in the airports") {
		t.Errorf("GAR-J join annotation not used: %s", garj)
	}
	if !strings.Contains(garj, "the number of flights") {
		t.Errorf("GAR-J asterisk not annotated: %s", garj)
	}
	if !strings.Contains(garj, "for each city of airports") {
		t.Errorf("GROUP BY phrase missing: %s", garj)
	}

	// The two join directions must produce different dialects under
	// GAR-J (the Fig. 7 failure mode GAR-J fixes).
	src := strings.Replace(gold, "destAirport", "sourceAirport", 1)
	garjSrc := express(t, dialect.NewJ(db), src)
	if garjSrc == garj {
		t.Error("GAR-J dialects identical for different join directions")
	}
	if !strings.Contains(garjSrc, "depart from") {
		t.Errorf("source join annotation not used: %s", garjSrc)
	}
}

func TestAggregatePhrases(t *testing.T) {
	b := dialect.New(schematest.Employee())
	cases := []struct{ src, want string }{
		{"SELECT COUNT(*) FROM employee", "the number of employees"},
		{"SELECT COUNT(DISTINCT city) FROM employee", "the number of distinct city of employee"},
		{"SELECT SUM(bonus) FROM evaluation", "the total bonus of evaluation"},
		{"SELECT AVG(age) FROM employee", "the average age of employee"},
		{"SELECT MIN(age) FROM employee", "the minimum age of employee"},
		{"SELECT MAX(age) FROM employee", "the maximum age of employee"},
	}
	for _, c := range cases {
		got := express(t, b, c.src)
		if !strings.Contains(got, c.want) {
			t.Errorf("Express(%q) = %q, want contains %q", c.src, got, c.want)
		}
	}
}

func TestWherePhrases(t *testing.T) {
	b := dialect.New(schematest.Employee())
	cases := []struct{ src, want string }{
		{"SELECT name FROM employee WHERE age > 30", "employee that age is greater than 30"},
		{"SELECT name FROM employee WHERE age >= 30", "is at least 30"},
		{"SELECT name FROM employee WHERE age < 30", "is less than 30"},
		{"SELECT name FROM employee WHERE age <= 30", "is at most 30"},
		{"SELECT name FROM employee WHERE city = 'Austin'", "employee that city is Austin"},
		{"SELECT name FROM employee WHERE city != 'Austin'", "is not Austin"},
		{"SELECT name FROM employee WHERE name LIKE '%jo%'", "contains %jo%"},
		{"SELECT name FROM employee WHERE name NOT LIKE '%jo%'", "does not contain"},
		{"SELECT name FROM employee WHERE age BETWEEN 20 AND 30", "is between 20 and 30"},
		{"SELECT name FROM employee WHERE age > 20 AND city = 'Austin'", " and "},
		{"SELECT name FROM employee WHERE age > 20 OR city = 'Austin'", " or "},
	}
	for _, c := range cases {
		got := express(t, b, c.src)
		if !strings.Contains(got, c.want) {
			t.Errorf("Express(%q) = %q, want contains %q", c.src, got, c.want)
		}
	}
}

func TestSubqueryPhrases(t *testing.T) {
	b := dialect.New(schematest.Employee())
	got := express(t, b, `SELECT name FROM employee WHERE employee_id IN
		(SELECT employee_id FROM evaluation WHERE bonus > 1000)`)
	if !strings.Contains(got, "is one of (") {
		t.Errorf("IN phrase missing: %s", got)
	}
	if !strings.Contains(got, "evaluation that bonus is greater than 1000") {
		t.Errorf("nested filter missing: %s", got)
	}
	got = express(t, b, `SELECT name FROM employee WHERE age > (SELECT AVG(age) FROM employee)`)
	if !strings.Contains(got, "is greater than the average age of employee") {
		t.Errorf("scalar subquery phrase wrong: %s", got)
	}
}

func TestGeoScalarSubqueryStyle(t *testing.T) {
	// The paper's GEO example: "... river that length is the maximum
	// length of river that river that traverse is California".
	b := dialect.New(schematest.Geo())
	got := express(t, b, `SELECT area FROM state WHERE population = (SELECT MAX(population) FROM state WHERE country_name = 'USA')`)
	if !strings.Contains(got, "state that population is the maximum population of state that state that country name is USA") {
		t.Errorf("GEO-style scalar phrase wrong: %s", got)
	}
}

func TestCompoundPhrases(t *testing.T) {
	b := dialect.New(schematest.Employee())
	got := express(t, b, "SELECT city FROM employee INTERSECT SELECT location FROM shop")
	if !strings.Contains(got, "Keep only the results that also appear in:") {
		t.Errorf("INTERSECT phrase missing: %s", got)
	}
	got = express(t, b, "SELECT city FROM employee EXCEPT SELECT location FROM shop")
	if !strings.Contains(got, "Exclude the results of:") {
		t.Errorf("EXCEPT phrase missing: %s", got)
	}
	got = express(t, b, "SELECT city FROM employee UNION SELECT location FROM shop")
	if !strings.Contains(got, "Also include the results of:") {
		t.Errorf("UNION phrase missing: %s", got)
	}
}

func TestPlaceholderRendering(t *testing.T) {
	b := dialect.New(schematest.Employee())
	q := sqlparse.MustParse("SELECT name FROM employee WHERE city = 'Austin'")
	if err := b.DB.Bind(q); err != nil {
		t.Fatal(err)
	}
	sqlast.MaskValues(q)
	got := b.Express(q)
	if !strings.Contains(got, "city is value") {
		t.Errorf("placeholder not rendered: %s", got)
	}
}

func TestDistinctDialects(t *testing.T) {
	// Structurally different queries must express differently.
	b := dialect.New(schematest.Employee())
	srcs := []string{
		"SELECT name FROM employee",
		"SELECT age FROM employee",
		"SELECT name FROM employee WHERE age > 30",
		"SELECT name FROM employee ORDER BY age DESC LIMIT 1",
		"SELECT name FROM employee ORDER BY age LIMIT 1",
		"SELECT city, COUNT(*) FROM employee GROUP BY city",
		"SELECT DISTINCT city FROM employee",
		"SELECT COUNT(DISTINCT city) FROM employee",
	}
	seen := map[string]string{}
	for _, src := range srcs {
		d := express(t, b, src)
		if prev, ok := seen[d]; ok {
			t.Errorf("queries %q and %q share dialect %q", prev, src, d)
		}
		seen[d] = src
	}
}

func TestExpressDeterministic(t *testing.T) {
	b := dialect.New(schematest.Employee())
	src := "SELECT city, COUNT(*) FROM employee WHERE age > 30 GROUP BY city HAVING COUNT(*) > 2 ORDER BY COUNT(*) DESC LIMIT 3"
	if express(t, b, src) != express(t, b, src) {
		t.Error("Express is not deterministic")
	}
}

func TestLimitWording(t *testing.T) {
	b := dialect.New(schematest.Employee())
	got := express(t, b, "SELECT name FROM employee ORDER BY age DESC LIMIT 3")
	if !strings.Contains(got, "the top three results") {
		t.Errorf("limit-3 wording wrong: %s", got)
	}
}
