package dialect_test

import (
	"testing"

	"repro/internal/dialect"
	"repro/internal/schema/schematest"
	"repro/internal/sqlparse"
)

// BenchmarkExpress measures dialect generation for a hard join query,
// the per-candidate cost of the data preparation step.
func BenchmarkExpress(b *testing.B) {
	db := schematest.Employee()
	builder := dialect.New(db)
	q := sqlparse.MustParse(`SELECT T1.name FROM employee AS T1
		JOIN evaluation AS T2 ON T1.employee_id = T2.employee_id
		WHERE T2.bonus > 100 GROUP BY T1.city ORDER BY COUNT(*) DESC LIMIT 1`)
	if err := db.Bind(q); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = builder.Express(q)
	}
}
