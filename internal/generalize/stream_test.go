package generalize_test

import (
	"errors"
	"testing"

	"repro/internal/generalize"
	"repro/internal/memgov"
	"repro/internal/schema/schematest"
	"repro/internal/sqlast"
)

// TestStreamMatchesGeneralize pins the streaming contract: Stream with
// a collecting sink emits exactly the queries Generalize materializes,
// in the same order, with the same stats.
func TestStreamMatchesGeneralize(t *testing.T) {
	db := schematest.Employee()
	want := generalize.Generalize(db, employeeSamples(), defaultCfg(3, 150))

	var got []*sqlast.Query
	res, err := generalize.Stream(db, employeeSamples(), defaultCfg(3, 150),
		func(q *sqlast.Query) error {
			got = append(got, q)
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if res.Queries != nil {
		t.Error("Stream materialized Queries; the sink owns emission")
	}
	if len(got) != len(want.Queries) {
		t.Fatalf("stream emitted %d queries, Generalize kept %d", len(got), len(want.Queries))
	}
	for i := range got {
		if sqlast.Fingerprint(got[i]) != sqlast.Fingerprint(want.Queries[i]) {
			t.Fatalf("emission %d diverged:\n%s\nvs\n%s", i, got[i], want.Queries[i])
		}
	}
	if res.Stats != want.Stats {
		t.Errorf("stats diverged: stream %+v, generalize %+v", res.Stats, want.Stats)
	}
}

// TestStreamSinkErrorStopsRun pins error propagation: the only error
// Stream returns is the sink's, and it stops the run at the failing
// emission.
func TestStreamSinkErrorStopsRun(t *testing.T) {
	db := schematest.Employee()
	boom := errors.New("sink full")
	emitted := 0
	_, err := generalize.Stream(db, employeeSamples(), defaultCfg(3, 150),
		func(q *sqlast.Query) error {
			emitted++
			if emitted == 3 {
				return boom
			}
			return nil
		})
	if !errors.Is(err, boom) {
		t.Fatalf("sink error not propagated: %v", err)
	}
	if emitted != 3 {
		t.Fatalf("run continued past the failing sink call: %d emissions", emitted)
	}
}

// TestStreamBudgetDenialDegrades pins graceful degradation: a frontier
// budget too small for the search ends the run early with Degraded set
// and a reason — never an error — and the budget is fully released
// when the run returns.
func TestStreamBudgetDenialDegrades(t *testing.T) {
	db := schematest.Employee()
	budget := memgov.New("generalize", 4<<10)
	cfg := defaultCfg(3, 500)
	cfg.Budget = budget
	var got []*sqlast.Query
	res, err := generalize.Stream(db, employeeSamples(), cfg,
		func(q *sqlast.Query) error {
			got = append(got, q)
			return nil
		})
	if err != nil {
		t.Fatalf("budget denial surfaced as an error: %v", err)
	}
	if !res.Degraded || res.DegradeReason == "" {
		t.Fatalf("denial not flagged: %+v", res)
	}
	if len(got) == 0 {
		t.Fatal("degraded run emitted nothing")
	}
	if budget.Used() != 0 {
		t.Errorf("frontier reservation leaked: %d bytes", budget.Used())
	}
	if budget.Denied() == 0 {
		t.Error("no denial recorded on the budget")
	}

	// A budget too small for even one sample degrades during intake.
	tiny := memgov.New("generalize", 64)
	cfg.Budget = tiny
	res, err = generalize.Stream(db, employeeSamples(), cfg,
		func(q *sqlast.Query) error { return nil })
	if err != nil || !res.Degraded {
		t.Fatalf("intake denial not flagged: res %+v err %v", res, err)
	}
}

// TestFrequencyPreservation pins the Rule 4 switch through both pool
// shapes: with frequency preservation the donor pool keeps duplicate
// components, without it the pool is deduplicated — both must still
// produce a valid generalized set.
func TestFrequencyPreservation(t *testing.T) {
	db := schematest.Employee()
	for _, freq := range []bool{true, false} {
		cfg := defaultCfg(5, 120)
		cfg.Rules.Frequency = freq
		res := generalize.Generalize(db, employeeSamples(), cfg)
		if len(res.Queries) <= len(employeeSamples()) {
			t.Errorf("frequency=%v generated nothing beyond the samples (%d queries)",
				freq, len(res.Queries))
		}
	}
}
