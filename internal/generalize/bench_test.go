package generalize_test

import (
	"testing"

	"repro/internal/generalize"
	"repro/internal/schema/schematest"
)

// BenchmarkGeneralize measures the compositional generalization of the
// employee sample set to a 500-query pool (the offline data-preparation
// cost per database).
func BenchmarkGeneralize(b *testing.B) {
	db := schematest.Employee()
	samples := employeeSamples()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res := generalize.Generalize(db, samples, generalize.Config{
			TargetSize: 500, Seed: int64(i), Rules: generalize.AllRules(),
		})
		if len(res.Queries) == 0 {
			b.Fatal("empty generalization")
		}
	}
}
