package generalize

import (
	"repro/internal/schema"
	"repro/internal/sqlast"
)

// SchemaAugment implements the paper's final future-work direction
// (§VII): "augmenting the query components by examining the underlying
// database schema to get some more basic components for generalization."
// The current-setting limitation (Definition 2) is that a component
// absent from the samples — say GROUP BY employee.name when only
// GROUP BY employee.id was seen — can never be generated. This function
// synthesizes minimal single-component queries from the schema itself:
// a projection per column, a GROUP BY per text column, and an ORDER BY
// per numeric column (ascending and top-1 descending). Appended to the
// sample set, they put every schema column into the component pool.
//
// The augmented queries are deliberately minimal: the recomposition
// rules still govern how the new components combine, so the Join Rule
// and the syntactic caps keep the generalized set component-similar in
// spirit while closing the coverage gap.
func SchemaAugment(db *schema.Database) []*sqlast.Query {
	var out []*sqlast.Query
	for _, t := range db.Tables {
		from := sqlast.From{Tables: []sqlast.TableRef{{Name: t.Name}}}
		for _, c := range t.Columns {
			ref := &sqlast.ColumnRef{Table: t.Name, Column: c.Name}
			// Projection component.
			out = append(out, &sqlast.Query{Select: &sqlast.Select{
				Items: []sqlast.SelectItem{{Expr: ref}},
				From:  from,
			}})
			switch c.Type {
			case schema.Text:
				// Grouping component with its count.
				gRef := *ref
				out = append(out, &sqlast.Query{Select: &sqlast.Select{
					Items: []sqlast.SelectItem{
						{Expr: &sqlast.ColumnRef{Table: t.Name, Column: c.Name}},
						{Expr: &sqlast.Agg{Func: sqlast.Count, Arg: &sqlast.ColumnRef{Column: "*"}}},
					},
					From:    from,
					GroupBy: []*sqlast.ColumnRef{&gRef},
				}})
				// Equality filter component (masked).
				out = append(out, &sqlast.Query{Select: &sqlast.Select{
					Items: []sqlast.SelectItem{{Expr: &sqlast.ColumnRef{Table: t.Name, Column: firstColumn(t)}}},
					From:  from,
					Where: &sqlast.Binary{Op: "=",
						L: &sqlast.ColumnRef{Table: t.Name, Column: c.Name},
						R: sqlast.Placeholder()},
				}})
			case schema.Number:
				if isKeyColumn(t, c) {
					continue
				}
				// Ordering components, both directions.
				out = append(out, &sqlast.Query{Select: &sqlast.Select{
					Items:   []sqlast.SelectItem{{Expr: &sqlast.ColumnRef{Table: t.Name, Column: firstColumn(t)}}},
					From:    from,
					OrderBy: []sqlast.OrderItem{{Expr: ref}},
				}})
				out = append(out, &sqlast.Query{Select: &sqlast.Select{
					Items:   []sqlast.SelectItem{{Expr: &sqlast.ColumnRef{Table: t.Name, Column: firstColumn(t)}}},
					From:    from,
					OrderBy: []sqlast.OrderItem{{Expr: &sqlast.ColumnRef{Table: t.Name, Column: c.Name}, Desc: true}},
					Limit:   1,
				}})
				// Comparison filter component (masked).
				out = append(out, &sqlast.Query{Select: &sqlast.Select{
					Items: []sqlast.SelectItem{{Expr: &sqlast.ColumnRef{Table: t.Name, Column: firstColumn(t)}}},
					From:  from,
					Where: &sqlast.Binary{Op: ">",
						L: &sqlast.ColumnRef{Table: t.Name, Column: c.Name},
						R: sqlast.Placeholder()},
				}})
			}
		}
	}
	return out
}

func firstColumn(t *schema.Table) string {
	for _, c := range t.Columns {
		if !isKeyColumn(t, c) {
			return c.Name
		}
	}
	return t.Columns[0].Name
}

func isKeyColumn(t *schema.Table, c *schema.Column) bool {
	for _, pk := range t.PrimaryKey {
		if pk == c.Name {
			return true
		}
	}
	return false
}
