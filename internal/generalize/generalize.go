// Package generalize implements the compositional SQL generalizer of the
// GAR paper (§III-A, Algorithm 1). Starting from a set of sample queries
// on one database, it synthesizes component-similar queries by
// recomposing the samples' components, pruned by the paper's four
// recomposition rules:
//
//	Rule 1 (Join Rule): generalized queries may only use join paths that
//	appear in the sample set.
//	Rule 2 (Syntactic Restriction): per-clause complexity (number of
//	predicates, select items, joins, ...) is capped by the maxima
//	observed in the samples.
//	Rule 3 (Frequency Preservation): components that occur more often in
//	the samples are installed proportionally more often.
//	Rule 4 (Sub-query Preservation): subqueries are never decomposed;
//	they move as part of their enclosing component.
//
// A closure property makes a component pool equivalent to the paper's
// pairwise tree shuffle: every component of every generalized tree is a
// component of some sample, so recomposing a tree with a pool component
// reaches exactly the set of component-similar queries that repeated
// pairwise shuffles reach, while converging faster.
package generalize

import (
	"math/rand"
	"sort"
	"strings"

	"repro/internal/component"
	"repro/internal/memgov"
	"repro/internal/schema"
	"repro/internal/sqlast"
	"repro/internal/sqlcheck"
)

// RuleSet toggles the four recomposition rules; all enabled by default.
// Disabling rules is used by the ablation benchmarks.
type RuleSet struct {
	Join      bool
	Syntactic bool
	Frequency bool
	Subquery  bool // kept for completeness; extraction is always atomic
}

// AllRules enables every recomposition rule.
func AllRules() RuleSet { return RuleSet{Join: true, Syntactic: true, Frequency: true, Subquery: true} }

// Config controls a generalization run.
type Config struct {
	// TargetSize stops the run once this many distinct queries exist
	// (samples included). Zero means no size cap.
	TargetSize int
	// MaxStall stops the run after this many consecutive iterations that
	// produced no new query. Default 500.
	MaxStall int
	// MaxIters is a hard iteration cap. Default 200 * TargetSize or
	// 200_000 when TargetSize is zero.
	MaxIters int
	// Seed seeds the deterministic random source.
	Seed int64
	// Rules selects the recomposition rules; zero value disables all
	// (use AllRules for the paper's configuration).
	Rules RuleSet
	// RawFrontier emits the full search frontier instead of applying the
	// full-rule output filter. Stages that feed the result back into a
	// later generalization pass set it: frontier queries are
	// recomposition material there, and filtering them would discard
	// components that are often the only path to valid queries several
	// swaps away.
	RawFrontier bool
	// Budget, when set, accounts the search frontier's retained bytes
	// against a memgov budget. A denied reservation ends the search
	// early instead of growing further: the run keeps everything
	// accepted so far and flags the result Degraded. The trajectory up
	// to the stopping point is byte-identical to an unbudgeted run with
	// the same seed, because accounting never alters which candidates
	// are tried or accepted — it only decides when to stop.
	Budget *memgov.Budget
}

// Stats reports what happened during a run.
type Stats struct {
	Iterations        int
	Generated         int // distinct new queries beyond the samples
	RejectedBind      int
	RejectedJoinRule  int
	RejectedSyntactic int
	RejectedSemantic  int
	FilteredOutput    int // frontier queries removed by the full-rule output filter
	Duplicates        int
}

// Result is the output of Generalize.
type Result struct {
	// Queries is the generalized set: the masked, alias-resolved samples
	// followed by all generated queries. Every query is bound against
	// the database (column references qualified). Streaming runs leave
	// it nil — the sink saw every query already.
	Queries []*sqlast.Query
	Stats   Stats
	// PrunedByRule counts, per sqlcheck rule ID, the queries the
	// semantic analyzer discarded — both candidates rejected by the
	// in-search Algorithm 1 aggregate check and frontier queries removed
	// by the full-rule output filter. The sum over all rules equals
	// Stats.RejectedSemantic.
	PrunedByRule map[string]int
	// Degraded reports that the memory budget ended the search early:
	// the emitted pool is a truncated prefix of what an unbudgeted run
	// would produce, not a failure.
	Degraded bool
	// DegradeReason carries the first budget denial's message.
	DegradeReason string
}

// Sink consumes the emitted pool queries of a streaming run, in pool
// order (masked alias-resolved samples first, then generated queries
// in acceptance order). A sink error aborts the run and is returned
// from Stream verbatim. The query stays owned by the generalizer's
// frontier; sinks that retain it beyond the call must account for (or
// copy) it themselves.
type Sink func(q *sqlast.Query) error

// limits are the Rule 2 caps collected from the sample set.
type limits struct {
	selectItems int
	wherePreds  int
	groupKeys   int
	orderKeys   int
	joins       int
	compound    bool
}

// Generalize runs the compositional generalization algorithm and
// materializes the whole pool in RAM. It is the collecting wrapper
// around Stream; large or budget-governed runs should use Stream
// directly so candidates can flow to disk instead of accumulating.
func Generalize(db *schema.Database, samples []*sqlast.Query, cfg Config) *Result {
	var queries []*sqlast.Query
	res, err := Stream(db, samples, cfg, func(q *sqlast.Query) error {
		queries = append(queries, q)
		return nil
	})
	if err != nil {
		// Only a sink error reaches here and the collecting sink cannot
		// fail; return what the run produced regardless.
		return res
	}
	res.Queries = queries
	return res
}

// queryBytes estimates the bytes one frontier tree retains, derived
// from its fingerprint so the estimate is deterministic across runs.
// memgov is an accountant, not an allocator: the multiplier reflects
// that an AST node graph weighs roughly an order of magnitude more
// than its printed form.
func queryBytes(fp string) int64 { return int64(len(fp))*8 + 256 }

// Stream runs the compositional generalization algorithm as a
// streaming producer: every emitted pool query flows through sink the
// moment it is accepted (pruning, dedup and the full-rule output
// filter all applied incrementally), instead of materializing in a
// result slice. Emission order and content are byte-identical to
// Generalize with the same configuration. Result.Queries stays nil.
//
// The returned error is a sink error, and nothing else: budget
// denials end the search gracefully (Result.Degraded) and are never
// returned as errors.
func Stream(db *schema.Database, samples []*sqlast.Query, cfg Config, sink Sink) (*Result, error) {
	if cfg.MaxStall <= 0 {
		cfg.MaxStall = 500
	}
	if cfg.MaxIters <= 0 {
		if cfg.TargetSize > 0 {
			cfg.MaxIters = 200 * cfg.TargetSize
		} else {
			cfg.MaxIters = 200_000
		}
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	res := &Result{PrunedByRule: map[string]int{}}
	// The frontier reservation covers the trees the search retains; it
	// is released when the run returns because the frontier dies with
	// it — sinks account separately for whatever they keep.
	frontier := cfg.Budget.Hold()
	defer frontier.Release()
	degrade := func(err error) {
		res.Degraded = true
		if res.DegradeReason == "" {
			res.DegradeReason = err.Error()
		}
	}
	// Two analyzer configurations drive the semantic pruning. The
	// in-search check applies the Algorithm 1 aggregate-coherence
	// conditions: candidates that fail it are discarded before entering
	// the search frontier, exactly as the paper prunes during
	// recomposition. The full rule set (join connectivity, predicate
	// type compatibility, ORDER BY scope, subquery shape, strict
	// aggregation) is stricter than the search prune and runs as an
	// output filter after the loop: its rejects stay in the frontier —
	// their components are legitimate recomposition material and often
	// the only path to valid queries several swaps away — but are
	// withheld from the emitted pool.
	searchCheck := sqlcheck.New(db, sqlcheck.AggGroup{Core: true})
	checker := sqlcheck.New(db)

	// emit applies the full-rule output filter incrementally — each
	// frontier tree is vetted exactly once, at acceptance, with the
	// same verdict and order the end-of-run filter used to produce —
	// and hands survivors to the sink.
	emit := func(q *sqlast.Query) error {
		if !cfg.RawFrontier {
			if diag := sqlcheck.FirstError(checker.CheckBound(q)); diag != nil {
				res.Stats.RejectedSemantic++
				res.Stats.FilteredOutput++
				res.PrunedByRule[diag.Rule]++
				return nil
			}
		}
		return sink(q)
	}

	// Normalize samples: bind, resolve aliases (skipped for self-joins),
	// mask literal values.
	var trees []*sqlast.Query
	seen := map[string]bool{}
	for _, s := range samples {
		q := prepare(db, s)
		if q == nil {
			continue
		}
		fp := sqlast.Fingerprint(q)
		if seen[fp] {
			continue
		}
		if err := frontier.Grow(queryBytes(fp)); err != nil {
			degrade(err)
			break
		}
		seen[fp] = true
		trees = append(trees, q)
		if err := emit(q); err != nil {
			return res, err
		}
	}
	if len(trees) == 0 || res.Degraded {
		return res, nil
	}

	lim := collectLimits(trees)
	allowedJoins := collectJoinPaths(db, trees)
	pool := buildPool(trees, cfg.Rules.Frequency)
	preds := collectPredicates(trees)

	stall := 0
	for iter := 0; iter < cfg.MaxIters; iter++ {
		if cfg.TargetSize > 0 && len(trees) >= cfg.TargetSize {
			break
		}
		if stall >= cfg.MaxStall {
			break
		}
		res.Stats.Iterations++
		stall++

		base := trees[rng.Intn(len(trees))]
		var cand *sqlast.Query
		// Recomposition happens at three granularities of the parse
		// tree: whole-clause swaps (the common case), table terminal
		// substitution inside the from/join component (pruned by
		// Rule 1), and predicate conjunction inside the where component
		// (pruned by Rule 2).
		switch op := rng.Float64(); {
		case op < 0.70:
			kinds := presentKinds(base, pool)
			if len(kinds) == 0 {
				continue
			}
			kind := kinds[rng.Intn(len(kinds))]
			donors := pool[kind]
			donor := donors[rng.Intn(len(donors))]
			cand = component.Replace(base, donor)
		case op < 0.85:
			cand = substituteTable(rng, db, base)
		default:
			cand = conjoinPredicate(rng, base, preds)
		}
		if cand == nil {
			continue
		}

		if cfg.Rules.Syntactic && !withinLimits(cand, lim) {
			res.Stats.RejectedSyntactic++
			continue
		}
		if err := db.Bind(cand); err != nil {
			res.Stats.RejectedBind++
			continue
		}
		if diag := sqlcheck.FirstError(searchCheck.CheckBound(cand)); diag != nil {
			res.Stats.RejectedSemantic++
			res.PrunedByRule[diag.Rule]++
			continue
		}
		if cfg.Rules.Join && !joinPathsAllowed(db, cand, allowedJoins) {
			res.Stats.RejectedJoinRule++
			continue
		}
		fp := sqlast.Fingerprint(cand)
		if seen[fp] {
			res.Stats.Duplicates++
			continue
		}
		if err := frontier.Grow(queryBytes(fp)); err != nil {
			// The budget refused further frontier growth: stop here and
			// keep everything already emitted — a truncated pool is the
			// graceful form of this failure, not an error.
			degrade(err)
			break
		}
		seen[fp] = true
		trees = append(trees, cand)
		res.Stats.Generated++
		stall = 0
		if err := emit(cand); err != nil {
			return res, err
		}
	}
	return res, nil
}

// prepare binds, alias-resolves and masks one sample; returns nil when
// the sample does not bind against the database.
func prepare(db *schema.Database, q *sqlast.Query) *sqlast.Query {
	c := q.Clone()
	if err := db.Bind(c); err != nil {
		return nil
	}
	if !hasSelfJoin(c) {
		sqlast.ResolveAliases(c)
	}
	sqlast.MaskValues(c)
	// Re-bind to keep qualified references consistent after resolution.
	if err := db.Bind(c); err != nil {
		return nil
	}
	return c
}

func hasSelfJoin(q *sqlast.Query) bool {
	found := false
	sqlast.WalkQueries(q, func(sub *sqlast.Query) {
		names := map[string]int{}
		for _, t := range sub.Select.From.Tables {
			if t.Sub == nil {
				names[strings.ToLower(t.Name)]++
			}
		}
		for _, n := range names {
			if n > 1 {
				found = true
			}
		}
	})
	return found
}

// substituteTable replaces one base-table terminal of the top-level FROM
// with another table of the database. Most results fail binding or the
// Join Rule; the survivors extend single-table coverage (the paper's
// Fig. 4 recomposition, where a "join"-type subtree gains a new table
// terminal).
func substituteTable(rng *rand.Rand, db *schema.Database, base *sqlast.Query) *sqlast.Query {
	cand := base.Clone()
	s := cand.Select
	if len(s.From.Tables) == 0 || len(db.Tables) < 2 {
		return nil
	}
	ti := rng.Intn(len(s.From.Tables))
	if s.From.Tables[ti].Sub != nil {
		return nil
	}
	repl := db.Tables[rng.Intn(len(db.Tables))]
	old := s.From.Tables[ti].Name
	if strings.EqualFold(repl.Name, old) {
		return nil
	}
	s.From.Tables[ti].Name = repl.Name
	// Rewrite qualified references from the old table to the new one so
	// the candidate is not trivially unbound.
	rewrite := func(c *sqlast.ColumnRef) {
		if strings.EqualFold(c.Table, old) {
			c.Table = repl.Name
		}
	}
	for _, c := range sqlast.SelectColumns(s) {
		rewrite(c)
	}
	return cand
}

// conjoinPredicate extends the base query's WHERE clause with one more
// sample predicate (an AND at the condition non-terminal).
func conjoinPredicate(rng *rand.Rand, base *sqlast.Query, preds []sqlast.Expr) *sqlast.Query {
	if len(preds) == 0 {
		return nil
	}
	cand := base.Clone()
	s := cand.Select
	if s.Where == nil {
		return nil
	}
	p := sqlast.CloneExpr(preds[rng.Intn(len(preds))])
	pfp := strings.ToLower(sqlast.ExprString(p))
	for _, existing := range sqlast.Predicates(s.Where) {
		if strings.ToLower(sqlast.ExprString(existing)) == pfp {
			return nil
		}
	}
	s.Where = &sqlast.Binary{Op: "AND", L: s.Where, R: p}
	return cand
}

// collectPredicates gathers the atomic predicates of all sample WHERE
// clauses (top-level blocks only; Rule 4 keeps subqueries whole inside
// their predicate).
func collectPredicates(trees []*sqlast.Query) []sqlast.Expr {
	var out []sqlast.Expr
	seen := map[string]bool{}
	for _, t := range trees {
		for _, p := range sqlast.Predicates(t.Select.Where) {
			fp := strings.ToLower(sqlast.ExprString(p))
			if seen[fp] {
				continue
			}
			seen[fp] = true
			out = append(out, sqlast.CloneExpr(p))
		}
	}
	return out
}

// buildPool gathers donor components per kind. With frequency
// preservation the pool keeps one entry per occurrence, so frequent
// components are sampled proportionally more often; otherwise the pool
// is deduplicated.
func buildPool(trees []*sqlast.Query, frequency bool) map[component.Kind][]component.Component {
	pool := map[component.Kind][]component.Component{}
	seen := map[string]bool{}
	for _, t := range trees {
		for _, c := range component.Extract(t) {
			if !frequency {
				fp := c.Fingerprint()
				if seen[fp] {
					continue
				}
				seen[fp] = true
			}
			pool[c.Kind] = append(pool[c.Kind], c)
		}
	}
	return pool
}

// presentKinds lists the component kinds that can be swapped on this
// tree: kinds the tree has and for which donors exist. From and join
// components are interchangeable only with their own kind, matching the
// paper's typed non-terminal selection.
func presentKinds(q *sqlast.Query, pool map[component.Kind][]component.Component) []component.Kind {
	var out []component.Kind
	for _, c := range component.Extract(q) {
		if len(pool[c.Kind]) > 0 {
			out = append(out, c.Kind)
		}
	}
	return out
}

func collectLimits(trees []*sqlast.Query) limits {
	var lim limits
	for _, t := range trees {
		sqlast.WalkQueries(t, func(sub *sqlast.Query) {
			s := sub.Select
			lim.selectItems = max(lim.selectItems, len(s.Items))
			lim.wherePreds = max(lim.wherePreds, len(sqlast.Predicates(s.Where)))
			lim.groupKeys = max(lim.groupKeys, len(s.GroupBy))
			lim.orderKeys = max(lim.orderKeys, len(s.OrderBy))
			lim.joins = max(lim.joins, len(s.From.Joins))
		})
		if t.IsCompound() {
			lim.compound = true
		}
	}
	return lim
}

func withinLimits(q *sqlast.Query, lim limits) bool {
	ok := true
	sqlast.WalkQueries(q, func(sub *sqlast.Query) {
		s := sub.Select
		if len(s.Items) > lim.selectItems ||
			len(sqlast.Predicates(s.Where)) > lim.wherePreds ||
			len(s.GroupBy) > lim.groupKeys ||
			len(s.OrderBy) > lim.orderKeys ||
			len(s.From.Joins) > lim.joins {
			ok = false
		}
	})
	if q.IsCompound() && !lim.compound {
		ok = false
	}
	return ok
}

// collectJoinPaths returns the canonical join-path identities of every
// block of every sample (the Rule 1 allow-list). Single-table blocks
// contribute the empty path, which is always allowed.
func collectJoinPaths(db *schema.Database, trees []*sqlast.Query) map[string]bool {
	allowed := map[string]bool{"": true}
	for _, t := range trees {
		sqlast.WalkQueries(t, func(sub *sqlast.Query) {
			allowed[joinPathKey(db, sub.Select)] = true
		})
	}
	return allowed
}

func joinPathsAllowed(db *schema.Database, q *sqlast.Query, allowed map[string]bool) bool {
	ok := true
	sqlast.WalkQueries(q, func(sub *sqlast.Query) {
		if !allowed[joinPathKey(db, sub.Select)] {
			ok = false
		}
	})
	return ok
}

func joinPathKey(db *schema.Database, s *sqlast.Select) string {
	edges := schema.JoinEdges(db, s)
	if len(edges) == 0 {
		return ""
	}
	keys := make([]string, 0, len(edges))
	for _, e := range edges {
		a := strings.ToLower(e.LeftTable + "." + e.LeftColumn)
		b := strings.ToLower(e.RightTable + "." + e.RightColumn)
		if b < a {
			a, b = b, a
		}
		keys = append(keys, a+"="+b)
	}
	sort.Strings(keys)
	return strings.Join(keys, "&")
}
