package generalize_test

import (
	"testing"

	"repro/internal/generalize"
	"repro/internal/norm"
	"repro/internal/schema/schematest"
	"repro/internal/sqlparse"
)

func TestSchemaAugmentProducesValidQueries(t *testing.T) {
	db := schematest.Employee()
	aug := generalize.SchemaAugment(db)
	if len(aug) < 20 {
		t.Fatalf("augmentation too small: %d", len(aug))
	}
	for _, q := range aug {
		if err := db.Bind(q.Clone()); err != nil {
			t.Errorf("augmented query does not bind: %s: %v", q, err)
		}
	}
}

// TestSchemaAugmentClosesCoverageGap reproduces the paper's Definition 2
// limitation and its proposed fix: with samples that only GROUP BY
// city, GROUP BY name is unreachable — until schema augmentation seeds
// the missing component.
func TestSchemaAugmentClosesCoverageGap(t *testing.T) {
	db := schematest.Employee()
	samples := parseAll(
		"SELECT city, COUNT(*) FROM employee GROUP BY city",
		"SELECT name FROM employee WHERE age > 30",
	)
	target := sqlparse.MustParse("SELECT name, COUNT(*) FROM employee GROUP BY name")
	if err := db.Bind(target); err != nil {
		t.Fatal(err)
	}

	contains := func(res *generalize.Result) bool {
		for _, q := range res.Queries {
			if norm.ExactMatch(q, target) {
				return true
			}
		}
		return false
	}

	plain := generalize.Generalize(db, samples, generalize.Config{
		TargetSize: 500, Seed: 1, Rules: generalize.AllRules()})
	if contains(plain) {
		t.Fatal("GROUP BY name should be unreachable from these samples")
	}

	augmented := generalize.Generalize(db,
		append(samples, generalize.SchemaAugment(db)...),
		generalize.Config{TargetSize: 1500, Seed: 1, Rules: generalize.AllRules()})
	if !contains(augmented) {
		t.Error("schema augmentation did not close the coverage gap")
	}
}
