package generalize_test

import (
	"strings"
	"testing"

	"repro/internal/generalize"
	"repro/internal/norm"
	"repro/internal/schema"
	"repro/internal/schema/schematest"
	"repro/internal/sqlast"
	"repro/internal/sqlcheck"
	"repro/internal/sqlparse"
)

func parseAll(srcs ...string) []*sqlast.Query {
	out := make([]*sqlast.Query, 0, len(srcs))
	for _, s := range srcs {
		out = append(out, sqlparse.MustParse(s))
	}
	return out
}

func employeeSamples() []*sqlast.Query {
	return parseAll(
		"SELECT T1.name FROM employee AS T1 JOIN evaluation AS T2 ON T1.employee_id = T2.employee_id ORDER BY T2.bonus DESC LIMIT 1",
		"SELECT name FROM employee WHERE age > 30",
		"SELECT age FROM employee WHERE city = 'Austin'",
		"SELECT city, COUNT(*) FROM employee GROUP BY city",
		"SELECT avg(bonus) FROM evaluation",
		"SELECT shop_name FROM shop ORDER BY number_products DESC LIMIT 1",
		"SELECT name FROM employee WHERE age > 30 AND city = 'Austin'",
		"SELECT T2.bonus FROM employee AS T1 JOIN evaluation AS T2 ON T1.employee_id = T2.employee_id WHERE T1.name = 'John'",
		"SELECT location FROM shop WHERE number_products > 50",
	)
}

func defaultCfg(seed int64, target int) generalize.Config {
	return generalize.Config{TargetSize: target, Seed: seed, Rules: generalize.AllRules()}
}

func TestGeneralizeGrowsSet(t *testing.T) {
	db := schematest.Employee()
	res := generalize.Generalize(db, employeeSamples(), defaultCfg(1, 200))
	if res.Stats.Generated < 25 {
		t.Fatalf("generated only %d queries (stats %+v)", res.Stats.Generated, res.Stats)
	}
	if len(res.Queries) != res.Stats.Generated+9-res.Stats.FilteredOutput {
		t.Errorf("query count %d inconsistent with stats %+v", len(res.Queries), res.Stats)
	}
}

// TestGeneralizeFig1 reproduces the paper's motivating example: from the
// gold sample, GAR must generate the component-similar query answering
// "Find the age of the employee who got the highest one time bonus."
func TestGeneralizeFig1(t *testing.T) {
	db := schematest.Employee()
	res := generalize.Generalize(db, employeeSamples(), defaultCfg(7, 2000))
	want := sqlparse.MustParse(
		"SELECT T1.age FROM employee AS T1 JOIN evaluation AS T2 ON T1.employee_id = T2.employee_id ORDER BY T2.bonus DESC LIMIT 1")
	for _, q := range res.Queries {
		if norm.ExactMatch(q, want) {
			return
		}
	}
	t.Fatalf("component-similar target not generated among %d queries", len(res.Queries))
}

func TestGeneralizeDeterministic(t *testing.T) {
	db := schematest.Employee()
	a := generalize.Generalize(db, employeeSamples(), defaultCfg(42, 300))
	b := generalize.Generalize(db, employeeSamples(), defaultCfg(42, 300))
	if len(a.Queries) != len(b.Queries) {
		t.Fatalf("non-deterministic sizes: %d vs %d", len(a.Queries), len(b.Queries))
	}
	for i := range a.Queries {
		if a.Queries[i].String() != b.Queries[i].String() {
			t.Fatalf("non-deterministic at %d: %s vs %s", i, a.Queries[i], b.Queries[i])
		}
	}
	c := generalize.Generalize(db, employeeSamples(), defaultCfg(43, 300))
	same := len(a.Queries) == len(c.Queries)
	if same {
		for i := range a.Queries {
			if a.Queries[i].String() != c.Queries[i].String() {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds produced identical runs")
	}
}

func TestGeneralizedQueriesAreValidAndMasked(t *testing.T) {
	db := schematest.Employee()
	res := generalize.Generalize(db, employeeSamples(), defaultCfg(3, 500))
	for _, q := range res.Queries {
		if err := db.Bind(q.Clone()); err != nil {
			t.Fatalf("generated query does not bind: %s: %v", q, err)
		}
		sqlast.WalkQueries(q, func(sub *sqlast.Query) {
			sqlast.WalkExprs(sub.Select.Where, func(e sqlast.Expr) {
				if l, ok := e.(*sqlast.Lit); ok && l.Kind != sqlast.PlaceholderLit {
					if l.Kind == sqlast.StringLit {
						t.Fatalf("unmasked literal %q in %s", l.Text, q)
					}
				}
			})
		})
	}
}

func TestJoinRulePrunesForeignPaths(t *testing.T) {
	db := schematest.Employee()
	// Samples join only employee-evaluation; with the Join Rule on, no
	// generalized query may join via another path (e.g. hiring-shop).
	res := generalize.Generalize(db, employeeSamples(), defaultCfg(5, 800))
	for _, q := range res.Queries {
		edges := schema.JoinEdges(db, q.Select)
		for _, e := range edges {
			pair := strings.ToLower(e.LeftTable + "-" + e.RightTable)
			if strings.Contains(pair, "shop") || strings.Contains(pair, "hiring") {
				t.Fatalf("join rule violated: %s", q)
			}
		}
	}
}

func TestJoinRuleAblation(t *testing.T) {
	db := schematest.Employee()
	rules := generalize.AllRules()
	on := generalize.Generalize(db, employeeSamples(), generalize.Config{TargetSize: 800, Seed: 5, Rules: rules})
	rules.Join = false
	off := generalize.Generalize(db, employeeSamples(), generalize.Config{TargetSize: 800, Seed: 5, Rules: rules})
	if on.Stats.RejectedJoinRule == 0 {
		t.Error("join rule never fired; table substitution is not exercising it")
	}
	if off.Stats.RejectedJoinRule != 0 {
		t.Error("join rule fired while disabled")
	}
}

func TestSyntacticRuleCapsPredicates(t *testing.T) {
	db := schematest.Employee()
	samples := employeeSamples()
	res := generalize.Generalize(db, samples, defaultCfg(11, 1500))
	// Samples have at most 1 predicate per WHERE; predicate conjunction
	// must be capped at that.
	for _, q := range res.Queries {
		if n := len(sqlast.Predicates(q.Select.Where)); n > 2 {
			t.Fatalf("syntactic rule violated (%d predicates): %s", n, q)
		}
	}
	if res.Stats.RejectedSyntactic == 0 {
		t.Error("syntactic rule never fired")
	}
}

func TestGeneralizeStallStops(t *testing.T) {
	db := schematest.Employee()
	// A single sample has nothing new to recompose; the run must stop on
	// the stall condition quickly.
	res := generalize.Generalize(db, parseAll("SELECT name FROM employee"), generalize.Config{
		TargetSize: 100, MaxStall: 50, Seed: 1, Rules: generalize.AllRules(),
	})
	if res.Stats.Iterations > 60 {
		t.Errorf("run did not stall: %+v", res.Stats)
	}
	if len(res.Queries) != 1 {
		t.Errorf("expected only the sample, got %d queries", len(res.Queries))
	}
}

func TestGeneralizeDedups(t *testing.T) {
	db := schematest.Employee()
	samples := append(employeeSamples(), employeeSamples()...)
	res := generalize.Generalize(db, samples, defaultCfg(2, 100))
	fps := map[string]bool{}
	for _, q := range res.Queries {
		fp := sqlast.Fingerprint(q)
		if fps[fp] {
			t.Fatalf("duplicate query in output: %s", q)
		}
		fps[fp] = true
	}
}

func TestGeneralizeEmptyInput(t *testing.T) {
	db := schematest.Employee()
	res := generalize.Generalize(db, nil, defaultCfg(1, 100))
	if len(res.Queries) != 0 {
		t.Errorf("expected empty result, got %d", len(res.Queries))
	}
	// Unbindable samples are dropped.
	res = generalize.Generalize(db, parseAll("SELECT nosuch FROM employee"), defaultCfg(1, 100))
	if len(res.Queries) != 0 {
		t.Errorf("unbindable sample kept: %d", len(res.Queries))
	}
}

// TestSemanticAnalyzerPrunes proves both sqlcheck pruning stages fire —
// the in-search Algorithm 1 aggregate check and the full-rule output
// filter — and that the per-rule counters surfaced in Result account
// exactly for the rejections.
func TestSemanticAnalyzerPrunes(t *testing.T) {
	db := schematest.Employee()
	res := generalize.Generalize(db, employeeSamples(), defaultCfg(1, 500))
	if res.Stats.RejectedSemantic == 0 {
		t.Fatal("semantic analyzer never pruned a candidate")
	}
	if res.PrunedByRule["agg-group"] == 0 {
		t.Errorf("aggregate-coherence pruning never fired: %v", res.PrunedByRule)
	}
	if res.Stats.FilteredOutput == 0 {
		t.Errorf("full-rule output filter never fired: %+v %v", res.Stats, res.PrunedByRule)
	}
	sum := 0
	for _, n := range res.PrunedByRule {
		sum += n
	}
	if sum != res.Stats.RejectedSemantic {
		t.Errorf("per-rule counters sum to %d, RejectedSemantic is %d", sum, res.Stats.RejectedSemantic)
	}
}

// TestPoolIsSemanticallyClean asserts the strong postcondition of the
// pruning stage: no query in the generalized pool trips any error-level
// sqlcheck rule.
func TestPoolIsSemanticallyClean(t *testing.T) {
	db := schematest.Employee()
	res := generalize.Generalize(db, employeeSamples(), defaultCfg(9, 600))
	chk := sqlcheck.New(db)
	for _, q := range res.Queries {
		if diags := chk.Check(q); sqlcheck.HasErrors(diags) {
			t.Fatalf("pool query %s fails analysis: %v", q, diags)
		}
	}
}
