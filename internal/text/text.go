// Package text provides the lexical utilities shared by the retrieval
// encoder and the re-ranking feature extractor: tokenization, stopword
// filtering, n-grams, edit distance and corpus IDF statistics.
package text

import (
	"bytes"
	"encoding/gob"
	"math"
	"strings"
	"unicode"
)

// Tokenize lower-cases s and splits it into word and number tokens.
// Punctuation separates tokens and is dropped.
func Tokenize(s string) []string {
	var out []string
	var cur strings.Builder
	flush := func() {
		if cur.Len() > 0 {
			out = append(out, cur.String())
			cur.Reset()
		}
	}
	for _, r := range s {
		switch {
		case unicode.IsLetter(r) || unicode.IsDigit(r):
			cur.WriteRune(unicode.ToLower(r))
		case r == '\'':
			// keep contractions attached: don't → dont
		default:
			flush()
		}
	}
	flush()
	return out
}

// stopwords is a small English stopword list tuned for dialect
// expressions: articles, auxiliaries and the glue words of the dialect
// templates that carry no content.
var stopwords = map[string]bool{
	"a": true, "an": true, "the": true, "of": true, "for": true,
	"to": true, "in": true, "on": true, "is": true, "are": true,
	"was": true, "were": true, "be": true, "and": true, "or": true,
	"that": true, "this": true, "those": true, "these": true,
	"with": true, "by": true, "as": true, "at": true, "it": true,
	"its": true, "do": true, "does": true, "did": true, "what": true,
	"which": true, "who": true, "whose": true, "how": true, "me": true,
	"give": true, "show": true, "list": true, "find": true,
	"return": true, "tell": true, "please": true, "all": true,
	"regarding": true, "results": true, "result": true, "only": true,
}

// IsStopword reports whether the lower-case token is a stopword.
func IsStopword(tok string) bool { return stopwords[tok] }

// ContentTokens tokenizes s, removes stopwords and stems plurals, so
// "employees" and "employee" compare equal in overlap features.
func ContentTokens(s string) []string {
	toks := Tokenize(s)
	out := toks[:0:0]
	for _, t := range toks {
		if !stopwords[t] {
			out = append(out, Stem(t))
		}
	}
	return out
}

// Stem strips simple English plural suffixes: "cities" → "city",
// "flights" → "flight". Short tokens and "ss" endings are untouched.
func Stem(t string) string {
	if len(t) > 4 && strings.HasSuffix(t, "ies") {
		return t[:len(t)-3] + "y"
	}
	if len(t) > 3 && strings.HasSuffix(t, "s") && !strings.HasSuffix(t, "ss") {
		return t[:len(t)-1]
	}
	return t
}

// NGrams returns the n-grams of the token slice as joined strings.
func NGrams(tokens []string, n int) []string {
	if n <= 0 || len(tokens) < n {
		return nil
	}
	out := make([]string, 0, len(tokens)-n+1)
	for i := 0; i+n <= len(tokens); i++ {
		out = append(out, strings.Join(tokens[i:i+n], " "))
	}
	return out
}

// CharNGrams returns the character n-grams of a single token, padded
// with '#' boundaries so short tokens still produce grams.
func CharNGrams(token string, n int) []string {
	padded := "#" + token + "#"
	if n <= 0 || len(padded) < n {
		return []string{padded}
	}
	out := make([]string, 0, len(padded)-n+1)
	for i := 0; i+n <= len(padded); i++ {
		out = append(out, padded[i:i+n])
	}
	return out
}

// Jaccard computes the Jaccard similarity of two string multisets
// (treated as sets).
func Jaccard(a, b []string) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	sa := make(map[string]bool, len(a))
	for _, t := range a {
		sa[t] = true
	}
	sb := make(map[string]bool, len(b))
	for _, t := range b {
		sb[t] = true
	}
	inter := 0
	for t := range sa {
		if sb[t] {
			inter++
		}
	}
	union := len(sa) + len(sb) - inter
	return float64(inter) / float64(union)
}

// OverlapRatio returns |a∩b| / |a| over the token sets; it measures how
// much of a is covered by b.
func OverlapRatio(a, b []string) float64 {
	if len(a) == 0 {
		return 0
	}
	sb := make(map[string]bool, len(b))
	for _, t := range b {
		sb[t] = true
	}
	seen := map[string]bool{}
	hit, total := 0, 0
	for _, t := range a {
		if seen[t] {
			continue
		}
		seen[t] = true
		total++
		if sb[t] {
			hit++
		}
	}
	return float64(hit) / float64(total)
}

// EditDistance computes the Levenshtein distance between two token
// slices.
func EditDistance(a, b []string) int {
	if len(a) == 0 {
		return len(b)
	}
	if len(b) == 0 {
		return len(a)
	}
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = i
		for j := 1; j <= len(b); j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			cur[j] = min(prev[j]+1, cur[j-1]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}

// IDF holds inverse-document-frequency statistics over a corpus.
type IDF struct {
	docs   int
	counts map[string]int
}

// NewIDF fits IDF statistics over the corpus (one string per document).
func NewIDF(corpus []string) *IDF {
	idf := &IDF{docs: len(corpus), counts: map[string]int{}}
	for _, doc := range corpus {
		seen := map[string]bool{}
		for _, t := range Tokenize(doc) {
			if !seen[t] {
				seen[t] = true
				idf.counts[t]++
			}
		}
	}
	return idf
}

// Weight returns the smoothed IDF weight of a token. Unseen tokens get
// the maximum weight.
func (i *IDF) Weight(token string) float64 {
	if i == nil || i.docs == 0 {
		return 1
	}
	df := i.counts[token]
	return math.Log(float64(i.docs+1)/float64(df+1)) + 1
}

// WeightedOverlap computes the IDF-weighted coverage of a's tokens by
// b's tokens: sum of weights of shared tokens divided by total weight
// of a's tokens.
func (i *IDF) WeightedOverlap(a, b []string) float64 {
	if len(a) == 0 {
		return 0
	}
	sb := make(map[string]bool, len(b))
	for _, t := range b {
		sb[t] = true
	}
	var hit, total float64
	seen := map[string]bool{}
	for _, t := range a {
		if seen[t] {
			continue
		}
		seen[t] = true
		w := i.Weight(t)
		total += w
		if sb[t] {
			hit += w
		}
	}
	if total == 0 {
		return 0
	}
	return hit / total
}

// idfState is the serialized form of IDF.
type idfState struct {
	Docs   int
	Counts map[string]int
}

// GobEncode implements gob.GobEncoder so trained models embedding IDF
// statistics can be persisted.
func (i *IDF) GobEncode() ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(idfState{Docs: i.docs, Counts: i.counts}); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// GobDecode implements gob.GobDecoder.
func (i *IDF) GobDecode(data []byte) error {
	var st idfState
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&st); err != nil {
		return err
	}
	i.docs = st.Docs
	i.counts = st.Counts
	return nil
}
