package text_test

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/text"
)

func TestTokenize(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"Find the name of the employee!", []string{"find", "the", "name", "of", "the", "employee"}},
		{"age > 30", []string{"age", "30"}},
		{"don't", []string{"dont"}},
		{"", nil},
		{"  ", nil},
		{"T1.employee_id", []string{"t1", "employee", "id"}},
	}
	for _, c := range cases {
		if got := text.Tokenize(c.in); !reflect.DeepEqual(got, c.want) {
			t.Errorf("Tokenize(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestContentTokens(t *testing.T) {
	got := text.ContentTokens("Find the name of the employee")
	want := []string{"name", "employee"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("ContentTokens = %v, want %v", got, want)
	}
}

func TestNGrams(t *testing.T) {
	got := text.NGrams([]string{"a", "b", "c"}, 2)
	want := []string{"a b", "b c"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("NGrams = %v, want %v", got, want)
	}
	if text.NGrams([]string{"a"}, 2) != nil {
		t.Error("NGrams of short input should be nil")
	}
}

func TestCharNGrams(t *testing.T) {
	got := text.CharNGrams("ab", 3)
	want := []string{"#ab", "ab#"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("CharNGrams = %v, want %v", got, want)
	}
}

func TestJaccardBasics(t *testing.T) {
	if j := text.Jaccard([]string{"a", "b"}, []string{"b", "c"}); j != 1.0/3 {
		t.Errorf("Jaccard = %v, want 1/3", j)
	}
	if j := text.Jaccard(nil, nil); j != 1 {
		t.Errorf("Jaccard(nil,nil) = %v, want 1", j)
	}
	if j := text.Jaccard([]string{"a"}, nil); j != 0 {
		t.Errorf("Jaccard(a,nil) = %v, want 0", j)
	}
}

func TestOverlapRatio(t *testing.T) {
	if r := text.OverlapRatio([]string{"a", "b", "a"}, []string{"a"}); r != 0.5 {
		t.Errorf("OverlapRatio = %v, want 0.5 (distinct tokens)", r)
	}
}

func TestEditDistance(t *testing.T) {
	cases := []struct {
		a, b []string
		want int
	}{
		{nil, nil, 0},
		{[]string{"a"}, nil, 1},
		{[]string{"a", "b"}, []string{"a", "b"}, 0},
		{[]string{"a", "b"}, []string{"a", "c"}, 1},
		{[]string{"a", "b", "c"}, []string{"b", "c", "d"}, 2},
	}
	for _, c := range cases {
		if got := text.EditDistance(c.a, c.b); got != c.want {
			t.Errorf("EditDistance(%v,%v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

// genTokens builds random token slices for property tests.
func genTokens(rng *rand.Rand) []string {
	n := rng.Intn(8)
	words := []string{"a", "b", "c", "d", "e"}
	out := make([]string, n)
	for i := range out {
		out[i] = words[rng.Intn(len(words))]
	}
	return out
}

func TestEditDistanceProperties(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 300,
		Values: func(vals []reflect.Value, rng *rand.Rand) {
			vals[0] = reflect.ValueOf(genTokens(rng))
			vals[1] = reflect.ValueOf(genTokens(rng))
		},
	}
	// Symmetry and identity.
	if err := quick.Check(func(a, b []string) bool {
		if text.EditDistance(a, a) != 0 {
			return false
		}
		return text.EditDistance(a, b) == text.EditDistance(b, a)
	}, cfg); err != nil {
		t.Error(err)
	}
	// Bounded by max length.
	if err := quick.Check(func(a, b []string) bool {
		d := text.EditDistance(a, b)
		maxLen := len(a)
		if len(b) > maxLen {
			maxLen = len(b)
		}
		return d >= 0 && d <= maxLen
	}, cfg); err != nil {
		t.Error(err)
	}
}

func TestJaccardProperties(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 300,
		Values: func(vals []reflect.Value, rng *rand.Rand) {
			vals[0] = reflect.ValueOf(genTokens(rng))
			vals[1] = reflect.ValueOf(genTokens(rng))
		},
	}
	if err := quick.Check(func(a, b []string) bool {
		j := text.Jaccard(a, b)
		if j < 0 || j > 1 {
			return false
		}
		return j == text.Jaccard(b, a)
	}, cfg); err != nil {
		t.Error(err)
	}
}

func TestIDF(t *testing.T) {
	idf := text.NewIDF([]string{
		"the employee name",
		"the employee age",
		"the shop location",
	})
	if idf.Weight("the") >= idf.Weight("shop") {
		t.Error("common token should weigh less than rare token")
	}
	if idf.Weight("unseen") < idf.Weight("shop") {
		t.Error("unseen token should weigh at least as much as rare token")
	}
}

func TestWeightedOverlap(t *testing.T) {
	idf := text.NewIDF([]string{"a b", "a c", "a d"})
	// Sharing the rare token c scores higher than sharing the common a.
	rare := idf.WeightedOverlap([]string{"c"}, []string{"c", "x"})
	common := idf.WeightedOverlap([]string{"a"}, []string{"a", "x"})
	if rare != 1 || common != 1 {
		t.Errorf("full coverage should be 1: rare=%v common=%v", rare, common)
	}
	mixed := idf.WeightedOverlap([]string{"a", "c"}, []string{"c"})
	if mixed <= 0.5 {
		t.Errorf("rare-token coverage should dominate: %v", mixed)
	}
	if (*text.IDF)(nil).WeightedOverlap([]string{"a"}, []string{"a"}) != 1 {
		t.Error("nil IDF should fall back to uniform weights")
	}
}
