package text

// synonymGroups is a small general-English synonym resource standing in
// for the lexical knowledge of the pre-trained language models used by
// every system in the paper (MPNet/RoBERTa for GAR, BART/GraPPa-style
// encoders for the baselines). Each group lists interchangeable nouns;
// the first entry is the canonical form. Multi-word synonyms are not
// representable at the token level and are left to character-n-gram and
// learned-embedding matching.
var synonymGroups = [][]string{
	{"student", "pupil", "learner"},
	{"teacher", "instructor", "professor"},
	{"course", "class"},
	{"employee", "worker", "staff"},
	{"company", "firm", "corporation"},
	{"shop", "store", "outlet"},
	{"product", "item", "good"},
	{"customer", "client", "buyer"},
	{"stadium", "arena", "venue"},
	{"concert", "show", "performance"},
	{"singer", "artist", "vocalist"},
	{"driver", "racer", "pilot"},
	{"race", "competition"},
	{"doctor", "physician", "medic"},
	{"book", "volume"},
	{"author", "writer"},
	{"movie", "film", "picture"},
	{"actor", "performer", "star"},
	{"airline", "carrier"},
	{"airport", "airfield", "hub"},
	{"team", "club", "squad"},
	{"player", "athlete", "sportsman"},
	{"hotel", "inn", "lodge"},
	{"restaurant", "diner", "eatery"},
	{"mechanic", "technician", "engineer"},
	{"salary", "pay", "wage"},
	{"price", "cost"},
	{"department", "dept"},
	{"specialty", "specialization"},
	{"country", "nationality"},
	{"revenue", "income", "earnings"},
	{"gross", "earnings"},
	{"capacity", "seats"},
	{"wins", "victories"},
	{"stock", "inventory"},
	{"goals", "score"},
	{"cuisine", "food"},
	{"track", "circuit"},
	{"gpa", "grade"},
	{"fleet", "planes", "plane"},
	{"certification", "certificate"},
	{"city", "town", "location"},
	{"championships", "titles"},
	{"awards", "award"},
	{"position", "role"},
	{"subject", "discipline"},
	{"major", "field"},
	{"genre", "category"},
	{"pages", "length"},
	{"city", "town"},
	{"big", "large"},
	{"small", "little"},
}

// canonMap maps each stemmed synonym to the stemmed canonical form of
// its group.
var canonMap = buildCanonMap()

func buildCanonMap() map[string]string {
	m := map[string]string{}
	for _, group := range synonymGroups {
		canon := Stem(group[0])
		for _, word := range group {
			m[Stem(word)] = canon
		}
	}
	return m
}

// Canon maps a token to its canonical synonym-group representative
// (after stemming); tokens outside any group are just stemmed.
func Canon(token string) string {
	s := Stem(token)
	if c, ok := canonMap[s]; ok {
		return c
	}
	return s
}

// CanonTokens tokenizes s, removes stopwords, and canonicalizes each
// token through the synonym resource.
func CanonTokens(s string) []string {
	toks := Tokenize(s)
	out := toks[:0:0]
	for _, t := range toks {
		if !stopwords[t] {
			out = append(out, Canon(t))
		}
	}
	return out
}
