// Package hardness classifies SQL queries into the SPIDER difficulty
// levels (easy / medium / hard / extra hard) and tags the clause types
// used in Table 5 of the GAR paper (nested, negation, ORDER BY,
// GROUP BY, others). The difficulty rules follow the official SPIDER
// evaluation script: difficulty is a function of how many SQL components
// a query combines.
package hardness

import (
	"repro/internal/sqlast"
)

// Level is a SPIDER difficulty level.
type Level int

// Difficulty levels, in increasing order.
const (
	Easy Level = iota
	Medium
	Hard
	ExtraHard
)

// Levels lists all levels in ascending difficulty order.
var Levels = []Level{Easy, Medium, Hard, ExtraHard}

// String returns the SPIDER name of the level.
func (l Level) String() string {
	switch l {
	case Easy:
		return "Easy"
	case Medium:
		return "Medium"
	case Hard:
		return "Hard"
	default:
		return "Extra Hard"
	}
}

// Classify computes the difficulty level of a query following the
// component-counting rules of the SPIDER evaluation script.
func Classify(q *sqlast.Query) Level {
	c1 := countComponent1(q)
	c2 := countComponent2(q)
	others := countOthers(q)
	switch {
	case c1 <= 1 && others == 0 && c2 == 0:
		return Easy
	case (others <= 2 && c1 <= 1 && c2 == 0) || (c1 <= 2 && others < 2 && c2 == 0):
		return Medium
	case (others > 2 && c1 <= 2 && c2 == 0) ||
		(c1 > 2 && c1 <= 3 && others <= 2 && c2 == 0) ||
		(c1 <= 1 && others == 0 && c2 <= 1):
		return Hard
	default:
		return ExtraHard
	}
}

// countComponent1 counts: WHERE, GROUP BY, ORDER BY, LIMIT, JOIN, OR,
// LIKE occurrences in the top-level block.
func countComponent1(q *sqlast.Query) int {
	s := q.Select
	n := 0
	if s.Where != nil {
		n++
	}
	if len(s.GroupBy) > 0 {
		n++
	}
	if len(s.OrderBy) > 0 {
		n++
	}
	if s.Limit > 0 {
		n++
	}
	n += len(s.From.Joins)
	n += countOps(s.Where, "OR") + countOps(s.Having, "OR")
	n += countOps(s.Where, "LIKE") + countOps(s.Where, "NOT LIKE")
	return n
}

// countComponent2 counts nesting: set operators and predicate
// subqueries anywhere in the query.
func countComponent2(q *sqlast.Query) int {
	n := 0
	if q.Op != sqlast.SetNone {
		n++
		n += countComponent2(q.Right)
	}
	s := q.Select
	count := func(e sqlast.Expr) {
		walkSubqueries(e, func(*sqlast.Query) { n++ })
	}
	count(s.Where)
	count(s.Having)
	for _, t := range s.From.Tables {
		if t.Sub != nil {
			n++
		}
	}
	return n
}

// countOthers counts: more than one aggregate, more than one select
// column, more than one WHERE conjunct, more than one GROUP BY key.
func countOthers(q *sqlast.Query) int {
	s := q.Select
	n := 0
	aggs := 0
	for _, it := range s.Items {
		sqlast.WalkExprs(it.Expr, func(e sqlast.Expr) {
			if _, ok := e.(*sqlast.Agg); ok {
				aggs++
			}
		})
	}
	for _, o := range s.OrderBy {
		sqlast.WalkExprs(o.Expr, func(e sqlast.Expr) {
			if _, ok := e.(*sqlast.Agg); ok {
				aggs++
			}
		})
	}
	if aggs > 1 {
		n++
	}
	if len(s.Items) > 1 {
		n++
	}
	if len(sqlast.Predicates(s.Where)) > 1 {
		n++
	}
	if len(s.GroupBy) > 1 {
		n++
	}
	return n
}

func countOps(e sqlast.Expr, op string) int {
	n := 0
	sqlast.WalkExprs(e, func(x sqlast.Expr) {
		if b, ok := x.(*sqlast.Binary); ok && b.Op == op {
			n++
		}
	})
	return n
}

// walkSubqueries calls fn for each predicate subquery directly inside e
// (without recursing into the subqueries themselves).
func walkSubqueries(e sqlast.Expr, fn func(*sqlast.Query)) {
	switch x := e.(type) {
	case nil:
		return
	case *sqlast.Binary:
		walkSubqueries(x.L, fn)
		walkSubqueries(x.R, fn)
	case *sqlast.Not:
		walkSubqueries(x.X, fn)
	case *sqlast.In:
		fn(x.Sub)
	case *sqlast.Exists:
		fn(x.Sub)
	case *sqlast.Subquery:
		fn(x.Q)
	case *sqlast.Between:
		walkSubqueries(x.Lo, fn)
		walkSubqueries(x.Hi, fn)
	}
}

// ClauseTags are the Table 5 clause-type categories.
type ClauseTags struct {
	Nested   bool
	Negation bool
	OrderBy  bool
	GroupBy  bool
	// Others is set when none of the other tags apply.
	Others bool
}

// Tags computes the clause-type tags of a query. A query may carry
// several tags; Others is exclusive with the rest.
func Tags(q *sqlast.Query) ClauseTags {
	var t ClauseTags
	for cur := q; cur != nil; cur = cur.Right {
		s := cur.Select
		if len(s.OrderBy) > 0 {
			t.OrderBy = true
		}
		if len(s.GroupBy) > 0 {
			t.GroupBy = true
		}
		checkNeg := func(e sqlast.Expr) {
			sqlast.WalkExprs(e, func(x sqlast.Expr) {
				switch b := x.(type) {
				case *sqlast.Not:
					t.Negation = true
				case *sqlast.Binary:
					if b.Op == "!=" || b.Op == "NOT LIKE" {
						t.Negation = true
					}
				case *sqlast.Between:
					if b.Negate {
						t.Negation = true
					}
				case *sqlast.In:
					if b.Negate {
						t.Negation = true
					}
					t.Nested = true
				case *sqlast.Exists:
					if b.Negate {
						t.Negation = true
					}
					t.Nested = true
				case *sqlast.Subquery:
					t.Nested = true
				}
			})
		}
		checkNeg(s.Where)
		checkNeg(s.Having)
		for _, tr := range s.From.Tables {
			if tr.Sub != nil {
				t.Nested = true
			}
		}
		if cur.Op == sqlast.SetNone {
			break
		}
	}
	if !t.Nested && !t.Negation && !t.OrderBy && !t.GroupBy {
		t.Others = true
	}
	return t
}

// IsCompound reports whether the query uses a set operator; used for the
// "Having Compound Queries" column of Table 3.
func IsCompound(q *sqlast.Query) bool { return q.IsCompound() }

// HasNested reports whether the query nests subqueries anywhere
// (predicate subqueries, derived tables, or set operators), the Table 3
// "Nested" column.
func HasNested(q *sqlast.Query) bool {
	if q.IsCompound() {
		return true
	}
	return Tags(q).Nested
}

// HasOrderBy reports whether any block of the query has ORDER BY.
func HasOrderBy(q *sqlast.Query) bool { return Tags(q).OrderBy }

// HasGroupBy reports whether any block of the query has GROUP BY.
func HasGroupBy(q *sqlast.Query) bool { return Tags(q).GroupBy }
