package hardness_test

import (
	"testing"

	"repro/internal/hardness"
	"repro/internal/sqlparse"
)

func level(t *testing.T, src string, want hardness.Level) {
	t.Helper()
	q := sqlparse.MustParse(src)
	if got := hardness.Classify(q); got != want {
		t.Errorf("Classify(%q) = %v, want %v", src, got, want)
	}
}

func TestClassifyEasy(t *testing.T) {
	level(t, "SELECT name FROM employee", hardness.Easy)
	level(t, "SELECT name FROM employee WHERE age > 30", hardness.Easy)
	level(t, "SELECT COUNT(*) FROM employee", hardness.Easy)
}

func TestClassifyMedium(t *testing.T) {
	level(t, "SELECT name, age FROM employee WHERE age > 30", hardness.Medium)
	level(t, "SELECT name FROM employee ORDER BY age DESC LIMIT 1", hardness.Medium)
	level(t, "SELECT city, COUNT(*) FROM employee GROUP BY city", hardness.Medium)
}

func TestClassifyHard(t *testing.T) {
	level(t, "SELECT name FROM employee WHERE age > (SELECT AVG(age) FROM employee)", hardness.Hard)
	level(t, "SELECT T1.name FROM employee AS T1 JOIN evaluation AS T2 ON T1.employee_id = T2.employee_id ORDER BY T2.bonus DESC LIMIT 1", hardness.Hard)
	// A single set operator with one simple component per side is Hard
	// under the official component-counting rules (c1<=1, others=0, c2=1).
	level(t, "SELECT name FROM employee WHERE age > 30 UNION SELECT manager_name FROM shop WHERE district = 'x' ORDER BY name", hardness.Hard)
}

func TestClassifyExtraHard(t *testing.T) {
	level(t, `SELECT T1.name FROM employee AS T1 JOIN evaluation AS T2 ON T1.employee_id = T2.employee_id
		WHERE T2.bonus > 100 GROUP BY T1.city ORDER BY COUNT(*) DESC LIMIT 1`, hardness.ExtraHard)
	level(t, `SELECT name FROM employee WHERE employee_id IN (SELECT employee_id FROM evaluation)
		AND age > 30 ORDER BY age DESC LIMIT 1`, hardness.ExtraHard)
}

func TestClassifyMonotoneExamples(t *testing.T) {
	// Adding components must not decrease difficulty on this chain.
	chain := []string{
		"SELECT name FROM employee",
		"SELECT name, age FROM employee WHERE age > 30",
		"SELECT T1.name FROM employee AS T1 JOIN evaluation AS T2 ON T1.employee_id = T2.employee_id ORDER BY T2.bonus DESC LIMIT 1",
		"SELECT T1.name, T1.age FROM employee AS T1 JOIN evaluation AS T2 ON T1.employee_id = T2.employee_id WHERE T1.age > 30 GROUP BY T1.city ORDER BY COUNT(*) DESC LIMIT 1",
	}
	prev := hardness.Easy
	for _, src := range chain {
		got := hardness.Classify(sqlparse.MustParse(src))
		if got < prev {
			t.Errorf("difficulty decreased at %q: %v < %v", src, got, prev)
		}
		prev = got
	}
}

func TestTags(t *testing.T) {
	cases := []struct {
		src  string
		want hardness.ClauseTags
	}{
		{"SELECT a FROM t", hardness.ClauseTags{Others: true}},
		{"SELECT a FROM t ORDER BY a", hardness.ClauseTags{OrderBy: true}},
		{"SELECT a FROM t GROUP BY a", hardness.ClauseTags{GroupBy: true}},
		{"SELECT a FROM t WHERE b != 1", hardness.ClauseTags{Negation: true}},
		{"SELECT a FROM t WHERE b NOT LIKE 'x%'", hardness.ClauseTags{Negation: true}},
		{"SELECT a FROM t WHERE b IN (SELECT c FROM s)", hardness.ClauseTags{Nested: true}},
		{"SELECT a FROM t WHERE b NOT IN (SELECT c FROM s)", hardness.ClauseTags{Nested: true, Negation: true}},
		{"SELECT a FROM t WHERE b > (SELECT AVG(b) FROM t)", hardness.ClauseTags{Nested: true}},
	}
	for _, c := range cases {
		got := hardness.Tags(sqlparse.MustParse(c.src))
		if got != c.want {
			t.Errorf("Tags(%q) = %+v, want %+v", c.src, got, c.want)
		}
	}
}

func TestTable3Predicates(t *testing.T) {
	q := sqlparse.MustParse("SELECT a FROM t UNION SELECT b FROM s")
	if !hardness.IsCompound(q) || !hardness.HasNested(q) {
		t.Error("compound query should be compound and nested")
	}
	q = sqlparse.MustParse("SELECT a FROM t ORDER BY a")
	if !hardness.HasOrderBy(q) || hardness.HasGroupBy(q) {
		t.Error("order-by tagging wrong")
	}
}
