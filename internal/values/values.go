// Package values implements GAR's value post-processing step (§V-A3).
// GAR masks literal values during generalization and never uses cell
// values during ranking; after ranking, this package (1) filters ranked
// candidates whose dialect lacks a column implied by a literal value in
// the NL query, and (2) re-instantiates placeholder literals from values
// found in the NL query, enabling execution-accuracy evaluation.
package values

import (
	"strconv"
	"strings"

	"repro/internal/engine"
	"repro/internal/schema"
	"repro/internal/sqlast"
	"repro/internal/text"
)

// ColRef names a schema column.
type ColRef struct {
	Table, Column string
}

// Linker links NL literal values to schema columns, optionally using a
// populated instance's cell values.
type Linker struct {
	db *schema.Database
	// cellCols maps each distinct lower-cased text cell value to the
	// columns it occurs in.
	cellCols map[string][]ColRef
}

// NewLinker builds a linker. content may be nil; then only quoted spans
// and numbers are linked, without column hints.
func NewLinker(db *schema.Database, content *engine.Instance) *Linker {
	l := &Linker{db: db, cellCols: map[string][]ColRef{}}
	if content == nil {
		return l
	}
	for tname, td := range content.Tables {
		t := db.Table(tname)
		if t == nil {
			continue
		}
		for _, row := range td.Rows {
			for ci, v := range row {
				if v.Null || v.IsNum || ci >= len(td.Columns) {
					continue
				}
				key := strings.ToLower(v.Str)
				if key == "" {
					continue
				}
				ref := ColRef{Table: t.Name, Column: td.Columns[ci]}
				if !containsRef(l.cellCols[key], ref) {
					l.cellCols[key] = append(l.cellCols[key], ref)
				}
			}
		}
	}
	return l
}

func containsRef(refs []ColRef, r ColRef) bool {
	for _, x := range refs {
		if strings.EqualFold(x.Table, r.Table) && strings.EqualFold(x.Column, r.Column) {
			return true
		}
	}
	return false
}

// NLValue is one literal value detected in an NL query.
type NLValue struct {
	Text  string
	IsNum bool
	// Columns are the schema columns whose cells contain this value
	// (empty without content linking).
	Columns []ColRef
}

// Extract finds literal values in the NL query: quoted spans, numbers,
// and known cell values (longest match first).
func (l *Linker) Extract(nl string) []NLValue {
	var out []NLValue
	seen := map[string]bool{}
	add := func(v NLValue) {
		key := strings.ToLower(v.Text)
		if key == "" || seen[key] {
			return
		}
		seen[key] = true
		out = append(out, v)
	}

	// Quoted spans: "red bull" or 'red bull'.
	for _, quote := range []byte{'"', '\''} {
		s := nl
		for {
			i := strings.IndexByte(s, quote)
			if i < 0 {
				break
			}
			j := strings.IndexByte(s[i+1:], quote)
			if j < 0 {
				break
			}
			span := s[i+1 : i+1+j]
			if span != "" {
				add(NLValue{Text: span, Columns: l.columnsOf(span)})
			}
			s = s[i+j+2:]
		}
	}

	// Known cell values appearing as substrings, longest first so
	// "new york city" wins over "york".
	lower := " " + strings.ToLower(nl) + " "
	var matches []string
	for val := range l.cellCols {
		if strings.Contains(lower, " "+val+" ") || strings.Contains(lower, " "+val+"?") ||
			strings.Contains(lower, " "+val+".") || strings.Contains(lower, " "+val+",") {
			matches = append(matches, val)
		}
	}
	// Longest-first insertion; skip values subsumed by an already-added
	// longer match.
	for {
		best := ""
		for _, m := range matches {
			if len(m) > len(best) && !seen[m] {
				covered := false
				for s := range seen {
					if strings.Contains(s, m) {
						covered = true
						break
					}
				}
				if !covered {
					best = m
				}
			}
		}
		if best == "" {
			break
		}
		add(NLValue{Text: best, Columns: l.columnsOf(best)})
	}

	// Numbers.
	for _, tok := range text.Tokenize(nl) {
		if _, err := strconv.ParseFloat(tok, 64); err == nil {
			add(NLValue{Text: tok, IsNum: true})
		}
	}
	return out
}

func (l *Linker) columnsOf(value string) []ColRef {
	return l.cellCols[strings.ToLower(value)]
}

// RequiredColumns returns the columns implied by the NL query's linked
// values: for every extracted value with column hints, those columns.
func (l *Linker) RequiredColumns(nl string) []ColRef {
	var out []ColRef
	for _, v := range l.Extract(nl) {
		out = append(out, v.Columns...)
	}
	return out
}

// DialectMentionsColumns reports whether the dialect expression mentions
// at least one of each required value's columns (by the column's NL
// annotation). With no required values it returns true.
func (l *Linker) DialectMentionsColumns(nl, dialectExpr string) bool {
	dl := strings.ToLower(dialectExpr)
	for _, v := range l.Extract(nl) {
		if len(v.Columns) == 0 {
			continue
		}
		found := false
		for _, ref := range v.Columns {
			_, col := l.db.Column(ref.Table, ref.Column)
			if col == nil {
				continue
			}
			if strings.Contains(dl, strings.ToLower(col.NL())) {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// FillPlaceholders returns a copy of the query with placeholder literals
// replaced by values extracted from the NL query. Values are assigned by
// type and column linking: a placeholder compared against a numeric
// column takes the next unused number; a text-column placeholder prefers
// a value linked to that column, then any remaining text value.
func (l *Linker) FillPlaceholders(q *sqlast.Query, nl string) *sqlast.Query {
	out := q.Clone()
	vals := l.Extract(nl)
	usedNum := map[int]bool{}
	usedText := map[int]bool{}

	takeNum := func() (string, bool) {
		for i, v := range vals {
			if v.IsNum && !usedNum[i] {
				usedNum[i] = true
				return v.Text, true
			}
		}
		return "", false
	}
	takeText := func(table, column string) (string, bool) {
		// Prefer a value linked to the exact column.
		for i, v := range vals {
			if v.IsNum || usedText[i] {
				continue
			}
			for _, ref := range v.Columns {
				if strings.EqualFold(ref.Table, table) && strings.EqualFold(ref.Column, column) {
					usedText[i] = true
					return v.Text, true
				}
			}
		}
		for i, v := range vals {
			if !v.IsNum && !usedText[i] {
				usedText[i] = true
				return v.Text, true
			}
		}
		return "", false
	}

	sqlast.WalkQueries(out, func(sub *sqlast.Query) {
		fill := func(e sqlast.Expr) {
			sqlast.WalkExprs(e, func(n sqlast.Expr) {
				switch x := n.(type) {
				case *sqlast.Binary:
					l.fillOne(x.L, x.R, sub.Select, takeNum, takeText)
				case *sqlast.Between:
					l.fillOne(x.X, x.Lo, sub.Select, takeNum, takeText)
					l.fillOne(x.X, x.Hi, sub.Select, takeNum, takeText)
				}
			})
		}
		fill(sub.Select.Where)
		fill(sub.Select.Having)
	})
	return out
}

// fillOne replaces rhs with an NL value when it is a placeholder whose
// left-hand side resolves to a column.
func (l *Linker) fillOne(lhs, rhs sqlast.Expr, s *sqlast.Select,
	takeNum func() (string, bool), takeText func(table, column string) (string, bool)) {

	lit, ok := rhs.(*sqlast.Lit)
	if !ok || lit.Kind != sqlast.PlaceholderLit {
		return
	}
	var table, column string
	colType := schema.Text
	switch c := lhs.(type) {
	case *sqlast.ColumnRef:
		if t, col := l.db.ResolveColumn(s, c); col != nil {
			table, column, colType = t.Name, col.Name, col.Type
		}
	case *sqlast.Agg:
		colType = schema.Number
	}
	if colType == schema.Number {
		if v, ok := takeNum(); ok {
			lit.Kind = sqlast.NumberLit
			lit.Text = v
		}
		return
	}
	if v, ok := takeText(table, column); ok {
		lit.Kind = sqlast.StringLit
		lit.Text = v
	}
}
