package values_test

import (
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/schema/schematest"
	"repro/internal/sqlast"
	"repro/internal/sqlparse"
	"repro/internal/values"
)

func linkerWithContent() *values.Linker {
	db := schematest.Employee()
	in := engine.NewInstance(db)
	n, s := engine.Num, engine.Str
	in.MustInsert("employee", n(1), s("George"), n(45), s("Madrid"))
	in.MustInsert("employee", n(2), s("John"), n(32), s("Austin"))
	in.MustInsert("shop", n(1), s("Red Bull"), s("Madrid"), s("Center"), n(120), s("Carla"))
	return values.NewLinker(db, in)
}

func TestExtractNumbersAndQuotes(t *testing.T) {
	l := values.NewLinker(schematest.Employee(), nil)
	vals := l.Extract(`employees older than 30 named "John Smith"`)
	var nums, texts []string
	for _, v := range vals {
		if v.IsNum {
			nums = append(nums, v.Text)
		} else {
			texts = append(texts, v.Text)
		}
	}
	if len(nums) != 1 || nums[0] != "30" {
		t.Errorf("numbers = %v", nums)
	}
	if len(texts) != 1 || texts[0] != "John Smith" {
		t.Errorf("texts = %v", texts)
	}
}

func TestExtractCellValues(t *testing.T) {
	l := linkerWithContent()
	vals := l.Extract("which employees live in Austin")
	found := false
	for _, v := range vals {
		if strings.EqualFold(v.Text, "austin") {
			found = true
			if len(v.Columns) == 0 {
				t.Error("cell value lacks column hints")
			}
		}
	}
	if !found {
		t.Errorf("Austin not extracted: %+v", vals)
	}
	// Multi-word cell value.
	vals = l.Extract("mechanics of the red bull team")
	found = false
	for _, v := range vals {
		if strings.EqualFold(v.Text, "red bull") {
			found = true
		}
	}
	if !found {
		t.Errorf("multi-word cell value not extracted: %+v", vals)
	}
}

func TestDialectMentionsColumns(t *testing.T) {
	l := linkerWithContent()
	nl := "which employees live in Austin"
	good := "Find the name of employee. Return results only for employee that city is value."
	bad := "Find the name of employee. Return results only for employee that age is greater than value."
	if !l.DialectMentionsColumns(nl, good) {
		t.Error("dialect mentioning 'city' should pass")
	}
	if l.DialectMentionsColumns(nl, bad) {
		t.Error("dialect without 'city' should be filtered")
	}
	// No linked values: everything passes.
	if !l.DialectMentionsColumns("how many employees", bad) {
		t.Error("value-free NL should not filter")
	}
}

func TestFillPlaceholders(t *testing.T) {
	l := linkerWithContent()
	q := sqlparse.MustParse("SELECT name FROM employee WHERE city = 'value' AND age > 'value'")
	schematest.Employee() // (db only used through linker)
	out := l.FillPlaceholders(q, "employees in Austin older than 30")
	s := out.String()
	if !strings.Contains(s, "city = 'Austin'") && !strings.Contains(s, "city = 'austin'") {
		t.Errorf("city placeholder not filled: %s", s)
	}
	if !strings.Contains(s, "age > 30") {
		t.Errorf("age placeholder not filled: %s", s)
	}
	// The input query must not be modified.
	if !strings.Contains(q.String(), "'value'") {
		t.Error("FillPlaceholders mutated its input")
	}
}

func TestFillPlaceholdersNested(t *testing.T) {
	l := linkerWithContent()
	q := sqlparse.MustParse("SELECT name FROM employee WHERE employee_id IN (SELECT employee_id FROM evaluation WHERE bonus > 'value')")
	out := l.FillPlaceholders(q, "employees with a bonus over 1000")
	if !strings.Contains(out.String(), "bonus > 1000") {
		t.Errorf("nested placeholder not filled: %s", out)
	}
}

func TestFillPlaceholdersHaving(t *testing.T) {
	l := linkerWithContent()
	q := sqlparse.MustParse("SELECT city FROM employee GROUP BY city HAVING COUNT(*) > 'value'")
	out := l.FillPlaceholders(q, "cities with more than 3 employees")
	if !strings.Contains(out.String(), "COUNT(*) > 3") {
		t.Errorf("having placeholder not filled: %s", out)
	}
}

func TestFillPlaceholdersNoValues(t *testing.T) {
	l := linkerWithContent()
	q := sqlparse.MustParse("SELECT name FROM employee WHERE city = 'value'")
	out := l.FillPlaceholders(q, "show employees in that city")
	lit := out.Select.Where.(*sqlast.Binary).R.(*sqlast.Lit)
	if lit.Kind != sqlast.PlaceholderLit {
		t.Errorf("placeholder should survive when no value is available: %s", out)
	}
}

func TestRequiredColumns(t *testing.T) {
	l := linkerWithContent()
	cols := l.RequiredColumns("employees in Madrid")
	if len(cols) == 0 {
		t.Fatal("Madrid should imply columns")
	}
	// Madrid occurs in employee.city and shop.location.
	tables := map[string]bool{}
	for _, c := range cols {
		tables[strings.ToLower(c.Table)] = true
	}
	if !tables["employee"] || !tables["shop"] {
		t.Errorf("expected hints in employee and shop: %+v", cols)
	}
}
