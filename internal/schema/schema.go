// Package schema models relational database schemas: tables, columns,
// types, primary and foreign keys, and the natural-language annotations
// that the GAR dialect builder relies on. It also defines the join
// annotations introduced by GAR-J (§IV of the paper).
package schema

import (
	"fmt"
	"strings"
)

// Type is a column data type. The subset distinguishes only text and
// number, which is all the SPIDER-style grammar needs (aggregation and
// ordering require numbers; LIKE requires text).
type Type int

// Column types.
const (
	Text Type = iota
	Number
)

// String returns a readable name for the type.
func (t Type) String() string {
	if t == Number {
		return "number"
	}
	return "text"
}

// Column is a table column.
type Column struct {
	Name string
	Type Type
	// Annotation is the natural-language name of the column (SPIDER's
	// "column name original" → "column name" mapping). When empty, the
	// identifier with underscores replaced by spaces is used.
	Annotation string
}

// NL returns the natural-language name of the column.
func (c *Column) NL() string {
	if c.Annotation != "" {
		return c.Annotation
	}
	return identifierToNL(c.Name)
}

// Table is a database table.
type Table struct {
	Name string
	// Annotation is the natural-language name of the table.
	Annotation string
	Columns    []*Column
	// PrimaryKey lists the key column names. Compound keys are
	// meaningful to the dialect builder: a column of a table with a
	// compound key describes "one" observation rather than a property of
	// the entity (the paper's "one bonus" example).
	PrimaryKey []string
}

// NL returns the natural-language name of the table.
func (t *Table) NL() string {
	if t.Annotation != "" {
		return t.Annotation
	}
	return identifierToNL(t.Name)
}

// Column returns the named column (case-insensitive) or nil.
func (t *Table) Column(name string) *Column {
	for _, c := range t.Columns {
		if strings.EqualFold(c.Name, name) {
			return c
		}
	}
	return nil
}

// HasCompoundKey reports whether the table's primary key spans more than
// one column.
func (t *Table) HasCompoundKey() bool { return len(t.PrimaryKey) > 1 }

// IsKey reports whether the column is the table's entire primary key.
func (t *Table) IsKey(col string) bool {
	return len(t.PrimaryKey) == 1 && strings.EqualFold(t.PrimaryKey[0], col)
}

// ForeignKey is a single-column foreign key reference.
type ForeignKey struct {
	FromTable, FromColumn string
	ToTable, ToColumn     string
}

// JoinAnnotation captures the semantics of one join operation, per the
// paper's four-part formulation: the joining tables, the join condition,
// a description of the joined "new table", and its key semantics (what
// one row of the join result denotes), which annotates asterisks.
type JoinAnnotation struct {
	// Tables are the joined table names.
	Tables []string
	// Conditions are the equi-join edges of the path.
	Conditions []JoinEdge
	// Description verbalizes the joined table, e.g.
	// "the flights arrive in the airports".
	Description string
	// TableKeys names what a single row of the join result is,
	// e.g. "flight"; used to verbalize COUNT(*).
	TableKeys string
}

// JoinEdge is one equi-join condition between two columns.
type JoinEdge struct {
	LeftTable, LeftColumn   string
	RightTable, RightColumn string
}

// canonical returns an orientation-independent form of the edge.
func (e JoinEdge) canonical() string {
	a := strings.ToLower(e.LeftTable + "." + e.LeftColumn)
	b := strings.ToLower(e.RightTable + "." + e.RightColumn)
	if a > b {
		a, b = b, a
	}
	return a + "=" + b
}

// Database is a complete schema with optional GAR-J join annotations.
type Database struct {
	Name        string
	Tables      []*Table
	ForeignKeys []ForeignKey
	// JoinAnnotations holds the manual GAR-J annotations for this
	// database; empty for plain GAR.
	JoinAnnotations []*JoinAnnotation
}

// Table returns the named table (case-insensitive) or nil.
func (d *Database) Table(name string) *Table {
	for _, t := range d.Tables {
		if strings.EqualFold(t.Name, name) {
			return t
		}
	}
	return nil
}

// Column resolves table.column (case-insensitive); either return value is
// nil when not found.
func (d *Database) Column(table, column string) (*Table, *Column) {
	t := d.Table(table)
	if t == nil {
		return nil, nil
	}
	return t, t.Column(column)
}

// TablesWithColumn returns all tables containing the named column.
func (d *Database) TablesWithColumn(column string) []*Table {
	var out []*Table
	for _, t := range d.Tables {
		if t.Column(column) != nil {
			out = append(out, t)
		}
	}
	return out
}

// FKEdge reports whether (t1.c1 = t2.c2) is a declared foreign-key edge
// in either direction.
func (d *Database) FKEdge(t1, c1, t2, c2 string) bool {
	for _, fk := range d.ForeignKeys {
		if strings.EqualFold(fk.FromTable, t1) && strings.EqualFold(fk.FromColumn, c1) &&
			strings.EqualFold(fk.ToTable, t2) && strings.EqualFold(fk.ToColumn, c2) {
			return true
		}
		if strings.EqualFold(fk.FromTable, t2) && strings.EqualFold(fk.FromColumn, c2) &&
			strings.EqualFold(fk.ToTable, t1) && strings.EqualFold(fk.ToColumn, c1) {
			return true
		}
	}
	return false
}

// FindJoinAnnotation returns the annotation whose condition set equals
// the given edges (orientation-independent), or nil.
func (d *Database) FindJoinAnnotation(edges []JoinEdge) *JoinAnnotation {
	want := edgeSet(edges)
	for _, ann := range d.JoinAnnotations {
		if edgeSetEqual(edgeSet(ann.Conditions), want) {
			return ann
		}
	}
	return nil
}

// FindJoinAnnotationSubset returns an annotation whose conditions are a
// subset of the given edges; among multiple matches the largest wins.
// This lets an annotated two-table join inform a three-table query.
func (d *Database) FindJoinAnnotationSubset(edges []JoinEdge) *JoinAnnotation {
	have := edgeSet(edges)
	var best *JoinAnnotation
	for _, ann := range d.JoinAnnotations {
		sub := true
		for e := range edgeSet(ann.Conditions) {
			if !have[e] {
				sub = false
				break
			}
		}
		if sub && (best == nil || len(ann.Conditions) > len(best.Conditions)) {
			best = ann
		}
	}
	return best
}

func edgeSet(edges []JoinEdge) map[string]bool {
	m := make(map[string]bool, len(edges))
	for _, e := range edges {
		m[e.canonical()] = true
	}
	return m
}

func edgeSetEqual(a, b map[string]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

// Validate checks structural consistency of the schema: unique table and
// column names, primary keys and foreign keys referencing existing
// columns.
func (d *Database) Validate() error {
	seenT := map[string]bool{}
	for _, t := range d.Tables {
		lt := strings.ToLower(t.Name)
		if seenT[lt] {
			return fmt.Errorf("schema %s: duplicate table %q", d.Name, t.Name)
		}
		seenT[lt] = true
		seenC := map[string]bool{}
		for _, c := range t.Columns {
			lc := strings.ToLower(c.Name)
			if seenC[lc] {
				return fmt.Errorf("schema %s: duplicate column %s.%s", d.Name, t.Name, c.Name)
			}
			seenC[lc] = true
		}
		for _, pk := range t.PrimaryKey {
			if t.Column(pk) == nil {
				return fmt.Errorf("schema %s: primary key %s.%s not a column", d.Name, t.Name, pk)
			}
		}
	}
	for _, fk := range d.ForeignKeys {
		if _, c := d.Column(fk.FromTable, fk.FromColumn); c == nil {
			return fmt.Errorf("schema %s: foreign key from %s.%s not found", d.Name, fk.FromTable, fk.FromColumn)
		}
		if _, c := d.Column(fk.ToTable, fk.ToColumn); c == nil {
			return fmt.Errorf("schema %s: foreign key to %s.%s not found", d.Name, fk.ToTable, fk.ToColumn)
		}
	}
	return nil
}

// identifierToNL converts snake_case or camelCase identifiers to a
// space-separated lower-case phrase: "employee_id" → "employee id",
// "destAirport" → "dest airport".
func identifierToNL(id string) string {
	var b strings.Builder
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c == '_':
			b.WriteByte(' ')
		case c >= 'A' && c <= 'Z':
			if i > 0 && id[i-1] != '_' && !(id[i-1] >= 'A' && id[i-1] <= 'Z') {
				b.WriteByte(' ')
			}
			b.WriteByte(c - 'A' + 'a')
		default:
			b.WriteByte(c)
		}
	}
	return b.String()
}
