// Package schematest provides example database schemas used by tests
// across the repository. The schemas are the two running examples of the
// GAR paper (employee/evaluation from Fig. 1 and airports/flights from
// Fig. 7) plus a small single-table GEO-like database.
package schematest

import "repro/internal/schema"

// Employee returns the Fig. 1 schema: employee, evaluation (compound
// key), shop, and hiring.
func Employee() *schema.Database {
	return &schema.Database{
		Name: "employee_hire_evaluation",
		Tables: []*schema.Table{
			{
				Name: "employee",
				Columns: []*schema.Column{
					{Name: "employee_id", Type: schema.Number},
					{Name: "name", Type: schema.Text},
					{Name: "age", Type: schema.Number},
					{Name: "city", Type: schema.Text},
				},
				PrimaryKey: []string{"employee_id"},
			},
			{
				Name: "shop",
				Columns: []*schema.Column{
					{Name: "shop_id", Type: schema.Number},
					{Name: "shop_name", Type: schema.Text, Annotation: "name"},
					{Name: "location", Type: schema.Text},
					{Name: "district", Type: schema.Text},
					{Name: "number_products", Type: schema.Number, Annotation: "number of products"},
					{Name: "manager_name", Type: schema.Text, Annotation: "manager name"},
				},
				PrimaryKey: []string{"shop_id"},
			},
			{
				Name: "hiring",
				Columns: []*schema.Column{
					{Name: "shop_id", Type: schema.Number},
					{Name: "employee_id", Type: schema.Number},
					{Name: "start_from", Type: schema.Text, Annotation: "start from"},
					{Name: "is_full_time", Type: schema.Text, Annotation: "is full time"},
				},
				PrimaryKey: []string{"employee_id"},
			},
			{
				Name: "evaluation",
				Columns: []*schema.Column{
					{Name: "employee_id", Type: schema.Number},
					{Name: "year_awarded", Type: schema.Text, Annotation: "year awarded"},
					{Name: "bonus", Type: schema.Number},
				},
				PrimaryKey: []string{"employee_id", "year_awarded"},
			},
		},
		ForeignKeys: []schema.ForeignKey{
			{FromTable: "hiring", FromColumn: "shop_id", ToTable: "shop", ToColumn: "shop_id"},
			{FromTable: "hiring", FromColumn: "employee_id", ToTable: "employee", ToColumn: "employee_id"},
			{FromTable: "evaluation", FromColumn: "employee_id", ToTable: "employee", ToColumn: "employee_id"},
		},
	}
}

// Flights returns the Fig. 7 schema: airlines, airports, flights, where
// flights references airports twice (source and destination).
func Flights() *schema.Database {
	db := &schema.Database{
		Name: "flight_2",
		Tables: []*schema.Table{
			{
				Name: "airlines",
				Columns: []*schema.Column{
					{Name: "uid", Type: schema.Number},
					{Name: "airline", Type: schema.Text},
					{Name: "abbreviation", Type: schema.Text},
					{Name: "country", Type: schema.Text},
				},
				PrimaryKey: []string{"uid"},
			},
			{
				Name: "airports",
				Columns: []*schema.Column{
					{Name: "city", Type: schema.Text},
					{Name: "airportCode", Type: schema.Text, Annotation: "airport code"},
					{Name: "airportName", Type: schema.Text, Annotation: "airport name"},
					{Name: "country", Type: schema.Text},
				},
				PrimaryKey: []string{"airportCode"},
			},
			{
				Name: "flights",
				Columns: []*schema.Column{
					{Name: "airline", Type: schema.Number},
					{Name: "flightNo", Type: schema.Number, Annotation: "flight number"},
					{Name: "sourceAirport", Type: schema.Text, Annotation: "source airport"},
					{Name: "destAirport", Type: schema.Text, Annotation: "destination airport"},
				},
				PrimaryKey: []string{"airline", "flightNo"},
			},
		},
		ForeignKeys: []schema.ForeignKey{
			{FromTable: "flights", FromColumn: "sourceAirport", ToTable: "airports", ToColumn: "airportCode"},
			{FromTable: "flights", FromColumn: "destAirport", ToTable: "airports", ToColumn: "airportCode"},
			{FromTable: "flights", FromColumn: "airline", ToTable: "airlines", ToColumn: "uid"},
		},
	}
	db.JoinAnnotations = []*schema.JoinAnnotation{
		{
			Tables: []string{"airports", "flights"},
			Conditions: []schema.JoinEdge{{
				LeftTable: "airports", LeftColumn: "airportCode",
				RightTable: "flights", RightColumn: "destAirport",
			}},
			Description: "the flights arrive in the airports",
			TableKeys:   "flight",
		},
		{
			Tables: []string{"airports", "flights"},
			Conditions: []schema.JoinEdge{{
				LeftTable: "airports", LeftColumn: "airportCode",
				RightTable: "flights", RightColumn: "sourceAirport",
			}},
			Description: "the flights depart from the airports",
			TableKeys:   "flight",
		},
	}
	return db
}

// Geo returns a single-table GEO-like database (states of the USA).
func Geo() *schema.Database {
	return &schema.Database{
		Name: "geo",
		Tables: []*schema.Table{
			{
				Name: "state",
				Columns: []*schema.Column{
					{Name: "state_name", Type: schema.Text, Annotation: "state name"},
					{Name: "population", Type: schema.Number},
					{Name: "area", Type: schema.Number},
					{Name: "country_name", Type: schema.Text, Annotation: "country name"},
					{Name: "capital", Type: schema.Text},
					{Name: "density", Type: schema.Number},
				},
				PrimaryKey: []string{"state_name"},
			},
		},
	}
}
