package schema_test

import (
	"strings"
	"testing"

	"repro/internal/schema"
	"repro/internal/schema/schematest"
	"repro/internal/sqlast"
	"repro/internal/sqlparse"
)

func TestFixturesValidate(t *testing.T) {
	for _, db := range []*schema.Database{schematest.Employee(), schematest.Flights(), schematest.Geo()} {
		if err := db.Validate(); err != nil {
			t.Errorf("%s: %v", db.Name, err)
		}
	}
}

func TestValidateErrors(t *testing.T) {
	dup := &schema.Database{Name: "x", Tables: []*schema.Table{{Name: "t"}, {Name: "T"}}}
	if err := dup.Validate(); err == nil {
		t.Error("duplicate table not caught")
	}
	dupCol := &schema.Database{Name: "x", Tables: []*schema.Table{{
		Name:    "t",
		Columns: []*schema.Column{{Name: "a"}, {Name: "A"}},
	}}}
	if err := dupCol.Validate(); err == nil {
		t.Error("duplicate column not caught")
	}
	badPK := &schema.Database{Name: "x", Tables: []*schema.Table{{
		Name: "t", Columns: []*schema.Column{{Name: "a"}}, PrimaryKey: []string{"b"},
	}}}
	if err := badPK.Validate(); err == nil {
		t.Error("bad primary key not caught")
	}
	badFK := &schema.Database{
		Name:        "x",
		Tables:      []*schema.Table{{Name: "t", Columns: []*schema.Column{{Name: "a"}}}},
		ForeignKeys: []schema.ForeignKey{{FromTable: "t", FromColumn: "z", ToTable: "t", ToColumn: "a"}},
	}
	if err := badFK.Validate(); err == nil {
		t.Error("bad foreign key not caught")
	}
}

func TestNLNames(t *testing.T) {
	db := schematest.Flights()
	_, col := db.Column("flights", "destAirport")
	if got := col.NL(); got != "destination airport" {
		t.Errorf("annotated NL = %q", got)
	}
	_, col = db.Column("airlines", "abbreviation")
	if got := col.NL(); got != "abbreviation" {
		t.Errorf("identifier NL = %q", got)
	}
	emp := schematest.Employee()
	_, col = emp.Column("employee", "employee_id")
	if got := col.NL(); got != "employee id" {
		t.Errorf("snake_case NL = %q", got)
	}
}

func TestCompoundKey(t *testing.T) {
	db := schematest.Employee()
	if !db.Table("evaluation").HasCompoundKey() {
		t.Error("evaluation should have a compound key")
	}
	if db.Table("employee").HasCompoundKey() {
		t.Error("employee should not have a compound key")
	}
	if !db.Table("employee").IsKey("employee_id") {
		t.Error("employee_id should be the key of employee")
	}
}

func TestBindQualifiesColumns(t *testing.T) {
	db := schematest.Employee()
	q := sqlparse.MustParse("SELECT name FROM employee WHERE age > 30")
	if err := db.Bind(q); err != nil {
		t.Fatal(err)
	}
	want := "SELECT employee.name FROM employee WHERE employee.age > 30"
	if got := q.String(); got != want {
		t.Errorf("Bind: got %q, want %q", got, want)
	}
}

func TestBindAliases(t *testing.T) {
	db := schematest.Employee()
	q := sqlparse.MustParse("SELECT T1.name FROM employee AS T1 JOIN evaluation AS T2 ON T1.employee_id = T2.employee_id ORDER BY T2.bonus DESC LIMIT 1")
	if err := db.Bind(q); err != nil {
		t.Fatal(err)
	}
}

func TestBindAmbiguous(t *testing.T) {
	db := schematest.Employee()
	// employee_id exists in employee, hiring and evaluation.
	q := sqlparse.MustParse("SELECT employee_id FROM employee JOIN evaluation ON employee.employee_id = evaluation.employee_id")
	if err := db.Bind(q); err == nil || !strings.Contains(err.Error(), "ambiguous") {
		t.Errorf("expected ambiguity error, got %v", err)
	}
}

func TestBindErrors(t *testing.T) {
	db := schematest.Employee()
	for _, src := range []string{
		"SELECT name FROM nosuch",
		"SELECT nosuch FROM employee",
		"SELECT T9.name FROM employee AS T1",
		"SELECT employee.nosuch FROM employee",
		"SELECT name FROM employee WHERE salary > 10",
	} {
		q := sqlparse.MustParse(src)
		if err := db.Bind(q); err == nil {
			t.Errorf("Bind(%q): expected error", src)
		}
	}
}

func TestBindSubqueryCorrelation(t *testing.T) {
	db := schematest.Employee()
	q := sqlparse.MustParse("SELECT name FROM employee AS T1 WHERE EXISTS (SELECT * FROM evaluation AS T2 WHERE T2.employee_id = T1.employee_id)")
	if err := db.Bind(q); err != nil {
		t.Fatal(err)
	}
}

func TestBindDerivedTable(t *testing.T) {
	db := schematest.Employee()
	q := sqlparse.MustParse("SELECT city FROM (SELECT city FROM employee GROUP BY city) AS sub")
	if err := db.Bind(q); err != nil {
		t.Fatal(err)
	}
}

func TestFKEdge(t *testing.T) {
	db := schematest.Flights()
	if !db.FKEdge("flights", "destAirport", "airports", "airportCode") {
		t.Error("forward FK edge not found")
	}
	if !db.FKEdge("airports", "airportCode", "flights", "destAirport") {
		t.Error("reversed FK edge not found")
	}
	if db.FKEdge("flights", "flightNo", "airports", "city") {
		t.Error("phantom FK edge found")
	}
}

func TestJoinEdgesAndAnnotations(t *testing.T) {
	db := schematest.Flights()
	q := sqlparse.MustParse("SELECT T1.city FROM airports AS T1 JOIN flights AS T2 ON T1.airportCode = T2.destAirport GROUP BY T1.city ORDER BY COUNT(*) DESC LIMIT 1")
	if err := db.Bind(q); err != nil {
		t.Fatal(err)
	}
	edges := schema.JoinEdges(db, q.Select)
	if len(edges) != 1 {
		t.Fatalf("JoinEdges = %d, want 1", len(edges))
	}
	ann := db.FindJoinAnnotation(edges)
	if ann == nil {
		t.Fatal("annotation not found")
	}
	if ann.Description != "the flights arrive in the airports" {
		t.Errorf("wrong annotation matched: %q", ann.Description)
	}
	// The source-airport join must match the other annotation.
	q2 := sqlparse.MustParse("SELECT T1.city FROM airports AS T1 JOIN flights AS T2 ON T1.airportCode = T2.sourceAirport")
	if err := db.Bind(q2); err != nil {
		t.Fatal(err)
	}
	ann2 := db.FindJoinAnnotation(schema.JoinEdges(db, q2.Select))
	if ann2 == nil || ann2.Description != "the flights depart from the airports" {
		t.Errorf("source join annotation wrong: %+v", ann2)
	}
}

func TestFindJoinAnnotationSubset(t *testing.T) {
	db := schematest.Flights()
	edges := []schema.JoinEdge{
		{LeftTable: "airports", LeftColumn: "airportCode", RightTable: "flights", RightColumn: "destAirport"},
		{LeftTable: "flights", LeftColumn: "airline", RightTable: "airlines", RightColumn: "uid"},
	}
	if ann := db.FindJoinAnnotation(edges); ann != nil {
		t.Error("exact match should fail for superset")
	}
	ann := db.FindJoinAnnotationSubset(edges)
	if ann == nil || ann.TableKeys != "flight" {
		t.Errorf("subset match failed: %+v", ann)
	}
}

func TestTablesWithColumn(t *testing.T) {
	db := schematest.Employee()
	if got := len(db.TablesWithColumn("employee_id")); got != 3 {
		t.Errorf("TablesWithColumn(employee_id) = %d, want 3", got)
	}
}

// TestBindSetOpRightArm verifies that compound queries bind every arm,
// not just the left-most block: resolution and qualification must reach
// the right arm, and errors there must surface.
func TestBindSetOpRightArm(t *testing.T) {
	db := schematest.Employee()
	q := sqlparse.MustParse("SELECT name FROM employee UNION SELECT manager_name FROM shop")
	if err := db.Bind(q); err != nil {
		t.Fatal(err)
	}
	if got := q.Right.Select.Items[0].Expr.(*sqlast.ColumnRef).Table; got != "shop" {
		t.Errorf("right arm not qualified: table %q, want \"shop\"", got)
	}
	// An error in the right arm must be reported.
	bad := sqlparse.MustParse("SELECT name FROM employee UNION SELECT nosuch FROM shop")
	if err := db.Bind(bad); err == nil {
		t.Error("expected binding error from the UNION right arm")
	}
	// Each arm has its own scope: the right arm must not see the left
	// arm's tables.
	cross := sqlparse.MustParse("SELECT name FROM employee UNION SELECT age FROM shop")
	if err := db.Bind(cross); err == nil {
		t.Error("right arm resolved a column from the left arm's scope")
	}
}

// TestBindDerivedVsBaseAmbiguity covers an unqualified column provided
// by both a derived table and a base table in the same FROM scope.
func TestBindDerivedVsBaseAmbiguity(t *testing.T) {
	db := schematest.Employee()
	// "city" is projected by the derived table and owned by employee:
	// ambiguous.
	q := sqlparse.MustParse("SELECT city FROM employee JOIN (SELECT city FROM employee) AS d ON employee.city = d.city")
	if err := db.Bind(q); err == nil || !strings.Contains(err.Error(), "ambiguous") {
		t.Errorf("expected ambiguity between base and derived provider, got %v", err)
	}
	// A qualified reference disambiguates in either direction.
	for _, src := range []string{
		"SELECT d.city FROM employee JOIN (SELECT city FROM employee) AS d ON employee.city = d.city",
		"SELECT employee.city FROM employee JOIN (SELECT city FROM employee) AS d ON employee.city = d.city",
	} {
		q := sqlparse.MustParse(src)
		if err := db.Bind(q); err != nil {
			t.Errorf("Bind(%q): %v", src, err)
		}
	}
	// A column only the derived table provides is not ambiguous, and is
	// qualified with the derived table's alias.
	uniq := sqlparse.MustParse("SELECT bonus FROM employee JOIN (SELECT employee_id, bonus FROM evaluation) AS d ON employee.employee_id = d.employee_id")
	if err := db.Bind(uniq); err != nil {
		t.Fatalf("derived-only column: %v", err)
	}
	if got := uniq.Select.Items[0].Expr.(*sqlast.ColumnRef).Table; got != "d" {
		t.Errorf("derived-only column qualified as %q, want \"d\"", got)
	}
}

// TestBindAliasShadowing covers aliases that collide with real table
// names: the alias must win within the block.
func TestBindAliasShadowing(t *testing.T) {
	db := schematest.Employee()
	// "evaluation" here is an alias for employee, shadowing the real
	// evaluation table: evaluation.bonus must fail (employee has no
	// bonus), evaluation.age must succeed.
	if err := db.Bind(sqlparse.MustParse("SELECT evaluation.bonus FROM employee AS evaluation")); err == nil {
		t.Error("alias shadowing: evaluation.bonus resolved against the shadowed base table")
	}
	if err := db.Bind(sqlparse.MustParse("SELECT evaluation.age FROM employee AS evaluation")); err != nil {
		t.Errorf("alias shadowing: evaluation.age should resolve via the alias: %v", err)
	}
	// An inner block's alias shadows the same alias in the outer block:
	// T.bonus inside the subquery must resolve against the inner T
	// (evaluation), not the outer T (employee).
	q := sqlparse.MustParse("SELECT name FROM employee AS T WHERE T.employee_id IN (SELECT T.employee_id FROM evaluation AS T WHERE T.bonus > 100)")
	if err := db.Bind(q); err != nil {
		t.Errorf("inner alias shadowing outer: %v", err)
	}
	// Unqualified shadowing: a column of the inner table resolves locally
	// even though an outer table also provides it.
	q2 := sqlparse.MustParse("SELECT name FROM employee WHERE EXISTS (SELECT employee_id FROM evaluation WHERE bonus > 100)")
	if err := db.Bind(q2); err != nil {
		t.Fatalf("unqualified local resolution: %v", err)
	}
	inner := q2.Select.Where.(*sqlast.Exists).Sub
	if got := inner.Select.Items[0].Expr.(*sqlast.ColumnRef).Table; got != "evaluation" {
		t.Errorf("inner unqualified column bound to %q, want \"evaluation\"", got)
	}
}
