package schema

import (
	"fmt"
	"strings"

	"repro/internal/sqlast"
)

// Bind resolves and validates a query against the database in place:
// every column reference is checked to exist, unqualified references are
// qualified with the unique table providing them, and alias references
// are verified. Bind returns an error when a table or column cannot be
// resolved or an unqualified column is ambiguous. Derived tables
// contribute their projected column names to the scope.
func (d *Database) Bind(q *sqlast.Query) error {
	return d.bindQuery(q, nil)
}

// scopeEntry is one FROM-clause table visible to a block.
type scopeEntry struct {
	key   string // lookup key: alias if present, else table name (lower)
	table *Table // nil for derived tables
	cols  []string
}

func (d *Database) bindQuery(q *sqlast.Query, outer []scopeEntry) error {
	for cur := q; cur != nil; cur = cur.Right {
		if err := d.bindSelect(cur.Select, outer); err != nil {
			return err
		}
		if cur.Op == sqlast.SetNone {
			break
		}
	}
	return nil
}

func (d *Database) bindSelect(s *sqlast.Select, outer []scopeEntry) error {
	if s == nil || len(s.From.Tables) == 0 {
		return fmt.Errorf("schema: empty FROM clause")
	}
	var scope []scopeEntry
	for i := range s.From.Tables {
		tr := &s.From.Tables[i]
		if tr.Sub != nil {
			if err := d.bindQuery(tr.Sub, outer); err != nil {
				return err
			}
			entry := scopeEntry{key: strings.ToLower(tr.Alias)}
			for _, it := range tr.Sub.Select.Items {
				if c, ok := it.Expr.(*sqlast.ColumnRef); ok {
					entry.cols = append(entry.cols, strings.ToLower(c.Column))
				}
			}
			scope = append(scope, entry)
			continue
		}
		t := d.Table(tr.Name)
		if t == nil {
			return fmt.Errorf("schema: unknown table %q in database %s", tr.Name, d.Name)
		}
		key := strings.ToLower(tr.Name)
		if tr.Alias != "" {
			key = strings.ToLower(tr.Alias)
		}
		scope = append(scope, scopeEntry{key: key, table: t})
	}
	full := scopes{local: scope, outer: outer}

	for i := range s.From.Joins {
		if err := d.bindColumn(&s.From.Joins[i].Left, full, false); err != nil {
			return err
		}
		if err := d.bindColumn(&s.From.Joins[i].Right, full, false); err != nil {
			return err
		}
	}
	for _, it := range s.Items {
		if err := d.bindValueExpr(it.Expr, full); err != nil {
			return err
		}
	}
	if err := d.bindCond(s.Where, full); err != nil {
		return err
	}
	for _, g := range s.GroupBy {
		if err := d.bindColumn(g, full, false); err != nil {
			return err
		}
	}
	if err := d.bindCond(s.Having, full); err != nil {
		return err
	}
	for _, o := range s.OrderBy {
		if err := d.bindValueExpr(o.Expr, full); err != nil {
			return err
		}
	}
	return nil
}

func (d *Database) bindCond(e sqlast.Expr, scope scopes) error {
	switch x := e.(type) {
	case nil:
		return nil
	case *sqlast.Binary:
		if x.Op == "AND" || x.Op == "OR" {
			if err := d.bindCond(x.L, scope); err != nil {
				return err
			}
			return d.bindCond(x.R, scope)
		}
		if err := d.bindValueExpr(x.L, scope); err != nil {
			return err
		}
		return d.bindValueExpr(x.R, scope)
	case *sqlast.Not:
		return d.bindCond(x.X, scope)
	case *sqlast.Between:
		if err := d.bindValueExpr(x.X, scope); err != nil {
			return err
		}
		if err := d.bindValueExpr(x.Lo, scope); err != nil {
			return err
		}
		return d.bindValueExpr(x.Hi, scope)
	case *sqlast.In:
		if err := d.bindValueExpr(x.X, scope); err != nil {
			return err
		}
		return d.bindQuery(x.Sub, scope.flatten())
	case *sqlast.Exists:
		return d.bindQuery(x.Sub, scope.flatten())
	default:
		return d.bindValueExpr(e, scope)
	}
}

func (d *Database) bindValueExpr(e sqlast.Expr, scope scopes) error {
	switch x := e.(type) {
	case nil:
		return nil
	case *sqlast.ColumnRef:
		return d.bindColumn(x, scope, true)
	case *sqlast.Agg:
		if x.Arg == nil {
			return fmt.Errorf("schema: aggregate %s without argument", x.Func)
		}
		return d.bindColumn(x.Arg, scope, true)
	case *sqlast.Lit:
		return nil
	case *sqlast.Subquery:
		return d.bindQuery(x.Q, scope.flatten())
	default:
		return fmt.Errorf("schema: unexpected expression %T in value position", e)
	}
}

// scopes separates the current block's FROM entries from the enclosing
// blocks' entries: the local tier shadows the outer one, so an
// unqualified column resolves to an outer table only when no local table
// provides it.
type scopes struct {
	local []scopeEntry
	outer []scopeEntry
}

func (sc scopes) flatten() []scopeEntry {
	return append(append([]scopeEntry(nil), sc.local...), sc.outer...)
}

// bindColumn resolves one column reference. allowStar permits asterisks.
func (d *Database) bindColumn(c *sqlast.ColumnRef, scope scopes, allowStar bool) error {
	err := d.bindColumnIn(c, scope.local, allowStar)
	if err != nil && len(scope.outer) > 0 && !strings.Contains(err.Error(), "ambiguous") {
		if outerErr := d.bindColumnIn(c, scope.outer, allowStar); outerErr == nil {
			return nil
		}
	}
	return err
}

func (d *Database) bindColumnIn(c *sqlast.ColumnRef, scope []scopeEntry, allowStar bool) error {
	if c.IsStar() {
		if !allowStar {
			return fmt.Errorf("schema: '*' not allowed here")
		}
		if c.Table != "" {
			if findScope(scope, c.Table) == nil {
				return fmt.Errorf("schema: unknown table %q for '*'", c.Table)
			}
		}
		return nil
	}
	if c.Table != "" {
		entry := findScope(scope, c.Table)
		if entry == nil {
			return fmt.Errorf("schema: reference %s.%s: table not in scope", c.Table, c.Column)
		}
		if entry.table != nil {
			if entry.table.Column(c.Column) == nil {
				return fmt.Errorf("schema: table %s has no column %q", entry.table.Name, c.Column)
			}
			return nil
		}
		for _, col := range entry.cols {
			if strings.EqualFold(col, c.Column) {
				return nil
			}
		}
		return fmt.Errorf("schema: derived table %s has no column %q", c.Table, c.Column)
	}
	// Unqualified: find the unique providing table in scope.
	var found *scopeEntry
	for i := range scope {
		e := &scope[i]
		ok := false
		if e.table != nil {
			ok = e.table.Column(c.Column) != nil
		} else {
			for _, col := range e.cols {
				if strings.EqualFold(col, c.Column) {
					ok = true
					break
				}
			}
		}
		if !ok {
			continue
		}
		if found != nil {
			// Ambiguous across scope entries: only an error if they are
			// distinct tables; self-joins share the same table.
			if found.table == nil || e.table == nil || found.table != e.table {
				return fmt.Errorf("schema: column %q is ambiguous", c.Column)
			}
		}
		if found == nil {
			found = e
		}
	}
	if found == nil {
		return fmt.Errorf("schema: column %q not found in scope", c.Column)
	}
	if found.table != nil && found.key == strings.ToLower(found.table.Name) {
		c.Table = found.table.Name
	} else {
		c.Table = found.key
	}
	return nil
}

func findScope(scope []scopeEntry, name string) *scopeEntry {
	key := strings.ToLower(name)
	for i := range scope {
		if scope[i].key == key {
			return &scope[i]
		}
		if scope[i].table != nil && strings.EqualFold(scope[i].table.Name, name) {
			return &scope[i]
		}
	}
	return nil
}

// ResolveColumn returns the table and column for a (possibly aliased)
// reference within a SELECT block's FROM scope; nil when unresolved.
func (d *Database) ResolveColumn(s *sqlast.Select, c *sqlast.ColumnRef) (*Table, *Column) {
	for i := range s.From.Tables {
		tr := &s.From.Tables[i]
		if tr.Sub != nil {
			continue
		}
		t := d.Table(tr.Name)
		if t == nil {
			continue
		}
		if c.Table != "" &&
			!strings.EqualFold(c.Table, tr.Name) &&
			!strings.EqualFold(c.Table, tr.Alias) {
			continue
		}
		if col := t.Column(c.Column); col != nil {
			return t, col
		}
	}
	return nil, nil
}

// ResolveTable returns the schema table for a (possibly aliased) table
// name within a SELECT block's FROM scope.
func (d *Database) ResolveTable(s *sqlast.Select, name string) *Table {
	for i := range s.From.Tables {
		tr := &s.From.Tables[i]
		if tr.Sub != nil {
			continue
		}
		if strings.EqualFold(name, tr.Name) || strings.EqualFold(name, tr.Alias) {
			return d.Table(tr.Name)
		}
	}
	return d.Table(name)
}

// JoinEdges extracts the equi-join edges of a SELECT block with aliases
// resolved to underlying table names.
func JoinEdges(d *Database, s *sqlast.Select) []JoinEdge {
	alias := map[string]string{}
	for _, tr := range s.From.Tables {
		if tr.Sub != nil {
			continue
		}
		if tr.Alias != "" {
			alias[strings.ToLower(tr.Alias)] = tr.Name
		}
		alias[strings.ToLower(tr.Name)] = tr.Name
	}
	resolve := func(name string) string {
		if t, ok := alias[strings.ToLower(name)]; ok {
			return t
		}
		return name
	}
	var out []JoinEdge
	for _, j := range s.From.Joins {
		out = append(out, JoinEdge{
			LeftTable: resolve(j.Left.Table), LeftColumn: j.Left.Column,
			RightTable: resolve(j.Right.Table), RightColumn: j.Right.Column,
		})
	}
	return out
}
