package sqlparse

import "testing"

// BenchmarkParse measures parsing of a representative hard query.
func BenchmarkParse(b *testing.B) {
	const src = `SELECT T1.name, COUNT(*) FROM employee AS T1
		JOIN evaluation AS T2 ON T1.employee_id = T2.employee_id
		WHERE T1.age > 30 AND T1.city = 'Austin'
		GROUP BY T1.city HAVING COUNT(*) > 2
		ORDER BY COUNT(*) DESC LIMIT 1`
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Parse(src); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPrint measures SQL re-serialization.
func BenchmarkPrint(b *testing.B) {
	q := MustParse("SELECT a, b FROM t JOIN s ON t.id = s.tid WHERE a > 1 ORDER BY b DESC LIMIT 3")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = q.String()
	}
}
