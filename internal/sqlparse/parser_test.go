package sqlparse

import (
	"strings"
	"testing"

	"repro/internal/sqlast"
)

var roundTripCases = []string{
	"SELECT name FROM employee",
	"SELECT DISTINCT name FROM employee",
	"SELECT name, age FROM employee",
	"SELECT * FROM employee",
	"SELECT COUNT(*) FROM employee",
	"SELECT COUNT(DISTINCT employee.name) FROM employee",
	"SELECT AVG(age) FROM employee WHERE age > 30",
	"SELECT name FROM employee WHERE name = 'John'",
	"SELECT name FROM employee WHERE age >= 18 AND age <= 65",
	"SELECT name FROM employee WHERE age < 18 OR age > 65",
	"SELECT name FROM employee WHERE age BETWEEN 18 AND 65",
	"SELECT name FROM employee WHERE age NOT BETWEEN 18 AND 65",
	"SELECT name FROM employee WHERE name LIKE '%smith%'",
	"SELECT name FROM employee WHERE name NOT LIKE '%smith%'",
	"SELECT name FROM employee WHERE id IN (SELECT employee_id FROM evaluation)",
	"SELECT name FROM employee WHERE id NOT IN (SELECT employee_id FROM evaluation)",
	"SELECT name FROM employee WHERE EXISTS (SELECT employee_id FROM evaluation)",
	"SELECT name FROM employee WHERE NOT EXISTS (SELECT employee_id FROM evaluation)",
	"SELECT name FROM employee GROUP BY dept",
	"SELECT dept, COUNT(*) FROM employee GROUP BY dept HAVING COUNT(*) > 5",
	"SELECT name FROM employee ORDER BY age",
	"SELECT name FROM employee ORDER BY age DESC",
	"SELECT name FROM employee ORDER BY age DESC, name",
	"SELECT name FROM employee ORDER BY age DESC LIMIT 1",
	"SELECT employee.name FROM employee AS T1 JOIN evaluation AS T2 ON T1.employee_id = T2.employee_id",
	"SELECT name FROM employee UNION SELECT name FROM manager",
	"SELECT name FROM employee INTERSECT SELECT name FROM manager",
	"SELECT name FROM employee EXCEPT SELECT name FROM manager",
	"SELECT name FROM employee WHERE salary > (SELECT AVG(salary) FROM employee)",
	"SELECT T1.name FROM employee AS T1 JOIN evaluation AS T2 ON T1.employee_id = T2.employee_id ORDER BY T2.bonus DESC LIMIT 1",
	"SELECT a FROM (SELECT a FROM t GROUP BY a) AS sub",
	"SELECT name FROM employee WHERE age > 18 AND (dept = 'hr' OR dept = 'it')",
}

// normalizeSpaces collapses whitespace for comparison; the printer uses
// single spaces, the input cases already do too.
func normalizeSpaces(s string) string { return strings.Join(strings.Fields(s), " ") }

func TestParsePrintRoundTrip(t *testing.T) {
	for _, src := range roundTripCases {
		q, err := Parse(src)
		if err != nil {
			t.Errorf("Parse(%q): %v", src, err)
			continue
		}
		got := q.String()
		if normalizeSpaces(got) != normalizeSpaces(src) {
			t.Errorf("round trip mismatch:\n in: %s\nout: %s", src, got)
		}
		// The printed form must re-parse to the same printed form (full
		// fixed-point check).
		q2, err := Parse(got)
		if err != nil {
			t.Fatalf("reparse of %q: %v", got, err)
		}
		if q2.String() != got {
			t.Errorf("reprint mismatch:\n 1: %s\n 2: %s", got, q2.String())
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELECT",
		"SELECT FROM t",
		"SELECT a FROM",
		"SELECT a FROM t WHERE",
		"SELECT a FROM t WHERE a >",
		"SELECT a FROM t GROUP a",
		"SELECT a FROM t ORDER age",
		"SELECT a FROM t LIMIT x",
		"SELECT a FROM t LIMIT 0",
		"SELECT a FROM t JOIN s",
		"SELECT a FROM t JOIN s ON a",
		"SELECT a FROM t WHERE a IN b",
		"SELECT a FROM t WHERE a NOT 5",
		"SELECT a FROM t WHERE 'unterminated",
		"SELECT a FROM t; SELECT b FROM t",
		"SELECT a FROM t WHERE a = 1 %",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q): expected error, got nil", src)
		}
	}
}

func TestParseCaseInsensitiveKeywords(t *testing.T) {
	q, err := Parse("select name from employee where age > 30 order by age desc limit 2")
	if err != nil {
		t.Fatal(err)
	}
	want := "SELECT name FROM employee WHERE age > 30 ORDER BY age DESC LIMIT 2"
	if got := q.String(); got != want {
		t.Errorf("got %q, want %q", got, want)
	}
}

func TestParseBareAlias(t *testing.T) {
	q := MustParse("SELECT e.name FROM employee e")
	if q.Select.From.Tables[0].Alias != "e" {
		t.Errorf("bare alias not parsed: %+v", q.Select.From.Tables[0])
	}
}

func TestParseUnionAllFolds(t *testing.T) {
	q := MustParse("SELECT a FROM t UNION ALL SELECT a FROM s")
	if q.Op != sqlast.Union {
		t.Errorf("expected UNION, got %v", q.Op)
	}
}

func TestParseNotEqualVariants(t *testing.T) {
	a := MustParse("SELECT a FROM t WHERE a != 1")
	b := MustParse("SELECT a FROM t WHERE a <> 1")
	if a.String() != b.String() {
		t.Errorf("!= and <> should normalize identically: %q vs %q", a, b)
	}
}

func TestParsePlaceholderLiterals(t *testing.T) {
	q := MustParse("SELECT a FROM t WHERE b = 'value'")
	pred := q.Select.Where.(*sqlast.Binary)
	lit := pred.R.(*sqlast.Lit)
	if lit.Kind != sqlast.PlaceholderLit {
		t.Errorf("expected placeholder literal, got kind %v", lit.Kind)
	}
}

func TestBlocks(t *testing.T) {
	q := MustParse("SELECT a FROM t UNION SELECT b FROM s EXCEPT SELECT c FROM r")
	if n := len(q.Blocks()); n != 3 {
		t.Errorf("Blocks() = %d, want 3", n)
	}
}

func TestMaskValues(t *testing.T) {
	q := MustParse("SELECT a FROM t WHERE b = 'John' AND c > 5 ORDER BY a LIMIT 3")
	sqlast.MaskValues(q)
	want := "SELECT a FROM t WHERE b = 'value' AND c > 'value' ORDER BY a LIMIT 3"
	if got := q.String(); got != want {
		t.Errorf("MaskValues: got %q, want %q", got, want)
	}
}

func TestFingerprintAliasInvariance(t *testing.T) {
	a := MustParse("SELECT T1.name FROM employee AS T1 JOIN evaluation AS T2 ON T1.id = T2.eid WHERE T2.bonus > 100")
	b := MustParse("SELECT x.name FROM employee AS x JOIN evaluation AS y ON x.id = y.eid WHERE y.bonus > 500")
	if sqlast.Fingerprint(a) != sqlast.Fingerprint(b) {
		t.Errorf("fingerprints differ:\n%s\n%s", sqlast.Fingerprint(a), sqlast.Fingerprint(b))
	}
	if sqlast.ValuedFingerprint(a) == sqlast.ValuedFingerprint(b) {
		t.Errorf("valued fingerprints should differ for different constants")
	}
}

func TestFingerprintDistinguishesStructure(t *testing.T) {
	pairs := [][2]string{
		{"SELECT a FROM t", "SELECT b FROM t"},
		{"SELECT a FROM t", "SELECT DISTINCT a FROM t"},
		{"SELECT a FROM t ORDER BY a", "SELECT a FROM t ORDER BY a DESC"},
		{"SELECT a FROM t LIMIT 1", "SELECT a FROM t LIMIT 2"},
		{"SELECT a FROM t WHERE b = 1", "SELECT a FROM t WHERE b != 1"},
		{"SELECT MAX(a) FROM t", "SELECT MIN(a) FROM t"},
	}
	for _, pr := range pairs {
		a, b := MustParse(pr[0]), MustParse(pr[1])
		if sqlast.Equal(a, b) {
			t.Errorf("Equal(%q, %q) = true, want false", pr[0], pr[1])
		}
	}
}

func TestCloneIsDeep(t *testing.T) {
	q := MustParse("SELECT T1.name FROM employee AS T1 WHERE T1.id IN (SELECT eid FROM evaluation WHERE bonus > 10)")
	c := q.Clone()
	sqlast.MaskValues(c)
	if strings.Contains(q.String(), "'value'") {
		t.Error("masking the clone modified the original")
	}
	if !strings.Contains(c.String(), "'value'") {
		t.Error("clone was not masked")
	}
}

func TestResolveAliasesCorrelated(t *testing.T) {
	q := MustParse("SELECT T1.name FROM employee AS T1 WHERE EXISTS (SELECT * FROM evaluation AS T2 WHERE T2.eid = T1.id)")
	sqlast.ResolveAliases(q)
	s := q.String()
	if strings.Contains(s, "T1") || strings.Contains(s, "T2") {
		t.Errorf("aliases not fully resolved: %s", s)
	}
	if !strings.Contains(s, "evaluation.eid = employee.id") {
		t.Errorf("correlated reference not resolved: %s", s)
	}
}

func TestQueryColumnsFindsNested(t *testing.T) {
	q := MustParse("SELECT a FROM t WHERE b IN (SELECT c FROM s WHERE d = 1)")
	cols := sqlast.QueryColumns(q)
	names := map[string]bool{}
	for _, c := range cols {
		names[c.Column] = true
	}
	for _, want := range []string{"a", "b", "c", "d"} {
		if !names[want] {
			t.Errorf("QueryColumns missing %q (got %v)", want, names)
		}
	}
}

func TestPredicatesFlatten(t *testing.T) {
	q := MustParse("SELECT a FROM t WHERE a = 1 AND b = 2 OR c = 3")
	preds := sqlast.Predicates(q.Select.Where)
	if len(preds) != 3 {
		t.Errorf("Predicates = %d, want 3", len(preds))
	}
}
