package sqlparse_test

import (
	"strings"
	"testing"

	"repro/internal/sqlparse"
)

// fuzzSeeds is the seed corpus: the spec's sample queries (every SQL
// construct the SPIDER subset supports), plus malformed shapes that
// have historically been risky for recursive-descent parsers.
func fuzzSeeds() []string {
	return []string{
		// Spec sample queries (the employee demo spec).
		"SELECT T1.name FROM employee AS T1 JOIN evaluation AS T2 ON T1.employee_id = T2.employee_id ORDER BY T2.bonus DESC LIMIT 1",
		"SELECT name FROM employee WHERE age > 30",
		"SELECT age FROM employee WHERE city = 'Austin'",
		"SELECT city, COUNT(*) FROM employee GROUP BY city",
		"SELECT AVG(bonus) FROM evaluation",
		"SELECT COUNT(*) FROM employee",
		"SELECT shop_name FROM shop ORDER BY number_products DESC LIMIT 1",
		"SELECT name FROM employee ORDER BY age DESC LIMIT 1",
		"SELECT city FROM employee",
		// Set operations, subqueries, HAVING, BETWEEN, IN, EXISTS, NOT.
		"SELECT name FROM employee UNION SELECT city FROM employee",
		"SELECT name FROM employee WHERE age > (SELECT AVG(age) FROM employee)",
		"SELECT city FROM employee GROUP BY city HAVING COUNT(*) > 2",
		"SELECT name FROM employee WHERE age BETWEEN 20 AND 30",
		"SELECT name FROM employee WHERE city IN (SELECT city FROM shop)",
		"SELECT name FROM employee WHERE NOT EXISTS (SELECT * FROM shop)",
		"SELECT name FROM employee WHERE NOT age IN (SELECT age FROM employee)",
		"SELECT name FROM (SELECT name FROM employee) AS sub",
		"SELECT name FROM employee WHERE name LIKE 'A'",
		// Malformed and adversarial shapes.
		"",
		"SELECT",
		"SELECT FROM",
		"SELECT * FROM t WHERE",
		"SELECT * FROM t WHERE (((((((",
		"SELECT * FROM t WHERE NOT NOT NOT NOT a = 1",
		"SELECT * FROM t UNION SELECT * FROM t UNION SELECT * FROM t",
		"SELECT * FROM t;",
		"SELECT * FROM t; SELECT * FROM u",
		"'unterminated",
		"SELECT \x00 FROM t",
		strings.Repeat("(", 100),
	}
}

// FuzzParse is the parser's no-panic contract: on arbitrary input,
// Parse returns a query or an error — it never panics, never hangs,
// and never overflows the stack. Accepted inputs must additionally
// survive one print→parse round trip.
func FuzzParse(f *testing.F) {
	for _, seed := range fuzzSeeds() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		q, err := sqlparse.Parse(src)
		if err != nil {
			return // rejecting is always fine; panicking is not
		}
		printed := q.String()
		q2, err := sqlparse.Parse(printed)
		if err != nil {
			t.Fatalf("accepted %q but rejected its own printout %q: %v", src, printed, err)
		}
		if again := q2.String(); again != printed {
			t.Fatalf("printout not a fixed point:\n first: %s\nsecond: %s", printed, again)
		}
	})
}

// TestParseDepthLimit pins the recursion guard: pathological nesting in
// every recursive production must fail with an error, not a stack
// overflow.
func TestParseDepthLimit(t *testing.T) {
	deep := []string{
		strings.Repeat("SELECT * FROM t WHERE a IN (", 4000) + "SELECT b FROM u" + strings.Repeat(")", 4000),
		strings.Repeat("SELECT * FROM t UNION ", 4000) + "SELECT * FROM t",
		"SELECT * FROM t WHERE " + strings.Repeat("NOT ", 100000) + "a = 1",
		"SELECT * FROM t WHERE " + strings.Repeat("(", 100000) + "a = 1" + strings.Repeat(")", 100000),
	}
	for _, src := range deep {
		if _, err := sqlparse.Parse(src); err == nil {
			t.Errorf("pathologically deep query accepted (len %d)", len(src))
		}
	}
	// Reasonable nesting must still parse.
	ok := "SELECT name FROM employee WHERE age > (SELECT AVG(age) FROM employee WHERE city IN (SELECT city FROM shop))"
	if _, err := sqlparse.Parse(ok); err != nil {
		t.Errorf("realistic nesting rejected: %v", err)
	}
}
