// Package sqlparse implements a recursive-descent parser for the SQL
// subset defined in package sqlast. The grammar follows the SPIDER
// benchmark query language:
//
//	query      = select { ("UNION"|"INTERSECT"|"EXCEPT") query }
//	select     = "SELECT" ["DISTINCT"] items "FROM" from
//	             ["WHERE" cond] ["GROUP" "BY" cols] ["HAVING" cond]
//	             ["ORDER" "BY" orders] ["LIMIT" number]
//	from       = tableref { "JOIN" tableref "ON" col "=" col }
//	tableref   = ident ["AS" ident] | "(" query ")" ["AS" ident]
//	cond       = andCond { "OR" andCond }
//	andCond    = predicate { "AND" predicate }
//	predicate  = operand comparison | operand ["NOT"] "IN" "(" query ")"
//	           | operand ["NOT"] "BETWEEN" value "AND" value
//	           | ["NOT"] "EXISTS" "(" query ")" | "NOT" predicate
//	operand    = column | aggregate | value | "(" query ")"
package sqlparse

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/sqlast"
	"repro/internal/sqltoken"
)

// Parse parses a complete SQL query.
func Parse(src string) (*sqlast.Query, error) {
	toks, err := sqltoken.Lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, src: src}
	q, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	// Allow a trailing semicolon.
	if p.peek().Kind == sqltoken.Symbol && p.peek().Text == ";" {
		p.next()
	}
	if p.peek().Kind != sqltoken.EOF {
		return nil, p.errorf("unexpected %s after end of query", p.peek())
	}
	return q, nil
}

// MustParse parses src and panics on error. It is intended ONLY for
// tests and statically-known queries such as templates; never call it
// on user-provided input — the serving path must return errors, not
// panic.
func MustParse(src string) *sqlast.Query {
	q, err := Parse(src)
	if err != nil {
		panic(fmt.Sprintf("sqlparse.MustParse(%q): %v", src, err))
	}
	return q
}

// maxDepth bounds grammar recursion (nested subqueries, chained set
// operations, stacked NOTs and parenthesized conditions). Adversarial
// inputs like "(((((..." or "NOT NOT NOT ..." must come back as parse
// errors, never as a stack overflow — the parser sits on the serving
// path. SPIDER-style queries nest a handful of levels at most.
const maxDepth = 64

type parser struct {
	toks  []sqltoken.Token
	pos   int
	src   string
	depth int
}

// enter counts one level of grammar recursion; the matching exit MUST
// be deferred. It fails (instead of letting the goroutine stack blow
// up) past maxDepth.
func (p *parser) enter() error {
	p.depth++
	if p.depth > maxDepth {
		return fmt.Errorf("sqlparse: query nesting exceeds %d levels", maxDepth)
	}
	return nil
}

func (p *parser) exit() { p.depth-- }

func (p *parser) peek() sqltoken.Token { return p.toks[p.pos] }

func (p *parser) next() sqltoken.Token {
	t := p.toks[p.pos]
	if t.Kind != sqltoken.EOF {
		p.pos++
	}
	return t
}

func (p *parser) errorf(format string, args ...any) error {
	return fmt.Errorf("sqlparse: %s (at offset %d in %q)",
		fmt.Sprintf(format, args...), p.peek().Pos, p.src)
}

func (p *parser) keyword(kw string) bool {
	t := p.peek()
	if t.Kind == sqltoken.Keyword && t.Text == kw {
		p.next()
		return true
	}
	return false
}

func (p *parser) expectKeyword(kw string) error {
	if !p.keyword(kw) {
		return p.errorf("expected %s, found %s", kw, p.peek())
	}
	return nil
}

func (p *parser) symbol(sym string) bool {
	t := p.peek()
	if t.Kind == sqltoken.Symbol && t.Text == sym {
		p.next()
		return true
	}
	return false
}

func (p *parser) expectSymbol(sym string) error {
	if !p.symbol(sym) {
		return p.errorf("expected %q, found %s", sym, p.peek())
	}
	return nil
}

func (p *parser) parseQuery() (*sqlast.Query, error) {
	if err := p.enter(); err != nil {
		return nil, err
	}
	defer p.exit()
	sel, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	q := &sqlast.Query{Select: sel}
	for _, op := range []struct {
		kw string
		op sqlast.SetOp
	}{{"UNION", sqlast.Union}, {"INTERSECT", sqlast.Intersect}, {"EXCEPT", sqlast.Except}} {
		if p.keyword(op.kw) {
			// UNION ALL folds to UNION in the subset.
			p.keyword("ALL")
			right, err := p.parseQuery()
			if err != nil {
				return nil, err
			}
			q.Op = op.op
			q.Right = right
			return q, nil
		}
	}
	return q, nil
}

func (p *parser) parseSelect() (*sqlast.Select, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	s := &sqlast.Select{}
	s.Distinct = p.keyword("DISTINCT")
	for {
		e, err := p.parseValueExpr()
		if err != nil {
			return nil, err
		}
		s.Items = append(s.Items, sqlast.SelectItem{Expr: e})
		if !p.symbol(",") {
			break
		}
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	from, err := p.parseFrom()
	if err != nil {
		return nil, err
	}
	s.From = *from
	if p.keyword("WHERE") {
		if s.Where, err = p.parseCond(); err != nil {
			return nil, err
		}
	}
	if p.keyword("GROUP") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			c, err := p.parseColumnRef()
			if err != nil {
				return nil, err
			}
			s.GroupBy = append(s.GroupBy, c)
			if !p.symbol(",") {
				break
			}
		}
	}
	if p.keyword("HAVING") {
		if s.Having, err = p.parseCond(); err != nil {
			return nil, err
		}
	}
	if p.keyword("ORDER") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseValueExpr()
			if err != nil {
				return nil, err
			}
			item := sqlast.OrderItem{Expr: e}
			if p.keyword("DESC") {
				item.Desc = true
			} else {
				p.keyword("ASC")
			}
			s.OrderBy = append(s.OrderBy, item)
			if !p.symbol(",") {
				break
			}
		}
	}
	if p.keyword("LIMIT") {
		t := p.peek()
		if t.Kind != sqltoken.Number {
			return nil, p.errorf("expected LIMIT count, found %s", t)
		}
		p.next()
		n, err := strconv.Atoi(t.Text)
		if err != nil || n <= 0 {
			return nil, p.errorf("invalid LIMIT count %q", t.Text)
		}
		s.Limit = n
	}
	return s, nil
}

func (p *parser) parseFrom() (*sqlast.From, error) {
	f := &sqlast.From{}
	t, err := p.parseTableRef()
	if err != nil {
		return nil, err
	}
	f.Tables = append(f.Tables, *t)
	for {
		// INNER JOIN and LEFT [OUTER] JOIN all fold to the plain join of
		// the subset.
		save := p.pos
		p.keyword("INNER")
		if p.keyword("LEFT") {
			p.keyword("OUTER")
		}
		if !p.keyword("JOIN") {
			p.pos = save
			break
		}
		t, err := p.parseTableRef()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("ON"); err != nil {
			return nil, err
		}
		left, err := p.parseColumnRef()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol("="); err != nil {
			return nil, err
		}
		right, err := p.parseColumnRef()
		if err != nil {
			return nil, err
		}
		f.Tables = append(f.Tables, *t)
		f.Joins = append(f.Joins, sqlast.JoinCond{Left: *left, Right: *right})
	}
	return f, nil
}

func (p *parser) parseTableRef() (*sqlast.TableRef, error) {
	t := &sqlast.TableRef{}
	if p.symbol("(") {
		q, err := p.parseQuery()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		t.Sub = q
	} else {
		tok := p.peek()
		if tok.Kind != sqltoken.Ident {
			return nil, p.errorf("expected table name, found %s", tok)
		}
		p.next()
		t.Name = tok.Text
	}
	if p.keyword("AS") {
		tok := p.peek()
		if tok.Kind != sqltoken.Ident {
			return nil, p.errorf("expected alias after AS, found %s", tok)
		}
		p.next()
		t.Alias = tok.Text
	} else if p.peek().Kind == sqltoken.Ident {
		// Bare alias: FROM employee e
		t.Alias = p.next().Text
	}
	return t, nil
}

// parseCond parses a boolean condition with OR at the lowest precedence.
func (p *parser) parseCond() (sqlast.Expr, error) {
	left, err := p.parseAndCond()
	if err != nil {
		return nil, err
	}
	for p.keyword("OR") {
		right, err := p.parseAndCond()
		if err != nil {
			return nil, err
		}
		left = &sqlast.Binary{Op: "OR", L: left, R: right}
	}
	return left, nil
}

func (p *parser) parseAndCond() (sqlast.Expr, error) {
	left, err := p.parsePredicate()
	if err != nil {
		return nil, err
	}
	for p.keyword("AND") {
		right, err := p.parsePredicate()
		if err != nil {
			return nil, err
		}
		left = &sqlast.Binary{Op: "AND", L: left, R: right}
	}
	return left, nil
}

func (p *parser) parsePredicate() (sqlast.Expr, error) {
	if err := p.enter(); err != nil {
		return nil, err
	}
	defer p.exit()
	if p.keyword("NOT") {
		if p.keyword("EXISTS") {
			return p.parseExistsBody(true)
		}
		x, err := p.parsePredicate()
		if err != nil {
			return nil, err
		}
		return &sqlast.Not{X: x}, nil
	}
	if p.keyword("EXISTS") {
		return p.parseExistsBody(false)
	}
	if p.symbol("(") {
		// Either a parenthesized condition or a scalar subquery operand.
		if p.peek().Kind == sqltoken.Keyword && p.peek().Text == "SELECT" {
			q, err := p.parseQuery()
			if err != nil {
				return nil, err
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			return p.parsePredicateTail(&sqlast.Subquery{Q: q})
		}
		cond, err := p.parseCond()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return cond, nil
	}
	operand, err := p.parseValueExpr()
	if err != nil {
		return nil, err
	}
	return p.parsePredicateTail(operand)
}

func (p *parser) parseExistsBody(negate bool) (sqlast.Expr, error) {
	if err := p.expectSymbol("("); err != nil {
		return nil, err
	}
	q, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	if err := p.expectSymbol(")"); err != nil {
		return nil, err
	}
	return &sqlast.Exists{Sub: q, Negate: negate}, nil
}

func (p *parser) parsePredicateTail(operand sqlast.Expr) (sqlast.Expr, error) {
	negate := p.keyword("NOT")
	switch {
	case p.keyword("IN"):
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		q, err := p.parseQuery()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return &sqlast.In{X: operand, Sub: q, Negate: negate}, nil
	case p.keyword("BETWEEN"):
		lo, err := p.parseValueExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("AND"); err != nil {
			return nil, err
		}
		hi, err := p.parseValueExpr()
		if err != nil {
			return nil, err
		}
		return &sqlast.Between{X: operand, Lo: lo, Hi: hi, Negate: negate}, nil
	case p.keyword("LIKE"):
		r, err := p.parseValueExpr()
		if err != nil {
			return nil, err
		}
		op := "LIKE"
		if negate {
			op = "NOT LIKE"
		}
		return &sqlast.Binary{Op: op, L: operand, R: r}, nil
	}
	if negate {
		return nil, p.errorf("expected IN, BETWEEN or LIKE after NOT")
	}
	t := p.peek()
	if t.Kind != sqltoken.Symbol || !isComparison(t.Text) {
		return nil, p.errorf("expected comparison operator, found %s", t)
	}
	p.next()
	r, err := p.parseValueExpr()
	if err != nil {
		return nil, err
	}
	return &sqlast.Binary{Op: t.Text, L: operand, R: r}, nil
}

func isComparison(op string) bool {
	switch op {
	case "=", "!=", "<", "<=", ">", ">=":
		return true
	}
	return false
}

// parseValueExpr parses a column reference, aggregate, literal or scalar
// subquery.
func (p *parser) parseValueExpr() (sqlast.Expr, error) {
	t := p.peek()
	switch t.Kind {
	case sqltoken.Number:
		p.next()
		return &sqlast.Lit{Kind: sqlast.NumberLit, Text: t.Text}, nil
	case sqltoken.String:
		p.next()
		if strings.EqualFold(t.Text, sqlast.PlaceholderValue) || t.Text == "terminal" {
			return sqlast.Placeholder(), nil
		}
		return &sqlast.Lit{Kind: sqlast.StringLit, Text: t.Text}, nil
	case sqltoken.Keyword:
		if fn, ok := aggFuncs[t.Text]; ok {
			p.next()
			return p.parseAggBody(fn)
		}
		return nil, p.errorf("unexpected keyword %s in expression", t)
	case sqltoken.Symbol:
		if t.Text == "*" {
			p.next()
			return &sqlast.ColumnRef{Column: "*"}, nil
		}
		if t.Text == "(" {
			p.next()
			q, err := p.parseQuery()
			if err != nil {
				return nil, err
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			return &sqlast.Subquery{Q: q}, nil
		}
		return nil, p.errorf("unexpected %s in expression", t)
	case sqltoken.Ident:
		return p.parseColumnRef()
	default:
		return nil, p.errorf("unexpected %s in expression", t)
	}
}

var aggFuncs = map[string]sqlast.AggFunc{
	"COUNT": sqlast.Count, "SUM": sqlast.Sum, "AVG": sqlast.Avg,
	"MIN": sqlast.Min, "MAX": sqlast.Max,
}

func (p *parser) parseAggBody(fn sqlast.AggFunc) (sqlast.Expr, error) {
	if err := p.expectSymbol("("); err != nil {
		return nil, err
	}
	agg := &sqlast.Agg{Func: fn}
	agg.Distinct = p.keyword("DISTINCT")
	if p.symbol("*") {
		agg.Arg = &sqlast.ColumnRef{Column: "*"}
	} else {
		c, err := p.parseColumnRef()
		if err != nil {
			return nil, err
		}
		agg.Arg = c
	}
	if err := p.expectSymbol(")"); err != nil {
		return nil, err
	}
	return agg, nil
}

// parseColumnRef parses ident [. (ident | *)].
func (p *parser) parseColumnRef() (*sqlast.ColumnRef, error) {
	t := p.peek()
	if t.Kind == sqltoken.Symbol && t.Text == "*" {
		p.next()
		return &sqlast.ColumnRef{Column: "*"}, nil
	}
	if t.Kind != sqltoken.Ident {
		return nil, p.errorf("expected column name, found %s", t)
	}
	p.next()
	c := &sqlast.ColumnRef{Column: t.Text}
	if p.symbol(".") {
		c.Table = t.Text
		n := p.peek()
		if n.Kind == sqltoken.Symbol && n.Text == "*" {
			p.next()
			c.Column = "*"
			return c, nil
		}
		if n.Kind != sqltoken.Ident {
			return nil, p.errorf("expected column after %q., found %s", c.Table, n)
		}
		p.next()
		c.Column = n.Text
	}
	return c, nil
}
