package core

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/faults"
)

// Stage names for StageError; they mirror the faults package's stages.
const (
	StageRetrieval   = string(faults.Retrieval)
	StageRerank      = string(faults.Rerank)
	StagePostprocess = string(faults.Postprocess)
	StageExecGuide   = string(faults.ExecGuide)
)

// StageError is a typed pipeline-stage failure: it records which stage
// of the translation path failed and why. Panics inside a stage are
// recovered and surfaced as a StageError wrapping a PanicError, so a
// bug in one ranking stage never takes down the caller.
type StageError struct {
	Stage string
	Err   error
}

func (e *StageError) Error() string {
	return fmt.Sprintf("core: %s stage: %v", e.Stage, e.Err)
}

func (e *StageError) Unwrap() error { return e.Err }

// PanicError wraps a recovered panic value.
type PanicError struct {
	Value any
}

func (e *PanicError) Error() string { return fmt.Sprintf("panic: %v", e.Value) }

// AsStageError unwraps err to a *StageError, if any.
func AsStageError(err error) (*StageError, bool) {
	var se *StageError
	if errors.As(err, &se) {
		return se, true
	}
	return nil, false
}

// runStage executes one pipeline stage inside a recover boundary: a
// context already done short-circuits, a returned error is wrapped
// with the stage name, and a panic is converted into a StageError
// instead of escaping to the caller.
func runStage(ctx context.Context, stage string, fn func() error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &StageError{Stage: stage, Err: &PanicError{Value: r}}
		}
	}()
	if cerr := ctx.Err(); cerr != nil {
		return &StageError{Stage: stage, Err: cerr}
	}
	if ferr := fn(); ferr != nil {
		if _, ok := AsStageError(ferr); ok {
			return ferr
		}
		return &StageError{Stage: stage, Err: ferr}
	}
	return nil
}
