package core_test

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/ltr"
	"repro/internal/norm"
	"repro/internal/schema/schematest"
	"repro/internal/sqlast"
	"repro/internal/sqlparse"
)

func employeeSamples() []*sqlast.Query {
	srcs := []string{
		"SELECT T1.name FROM employee AS T1 JOIN evaluation AS T2 ON T1.employee_id = T2.employee_id ORDER BY T2.bonus DESC LIMIT 1",
		"SELECT name FROM employee WHERE age > 30",
		"SELECT age FROM employee WHERE city = 'Austin'",
		"SELECT city, COUNT(*) FROM employee GROUP BY city",
		"SELECT AVG(bonus) FROM evaluation",
		"SELECT COUNT(*) FROM employee",
		"SELECT shop_name FROM shop ORDER BY number_products DESC LIMIT 1",
		"SELECT name FROM employee ORDER BY age DESC LIMIT 1",
		"SELECT city FROM employee",
	}
	out := make([]*sqlast.Query, 0, len(srcs))
	for _, s := range srcs {
		out = append(out, sqlparse.MustParse(s))
	}
	return out
}

func employeeExamples() []ltr.Example {
	mk := func(nl, sql string) ltr.Example {
		return ltr.Example{NL: nl, Gold: sqlparse.MustParse(sql)}
	}
	return []ltr.Example{
		mk("find the name of the employee who got the highest one time bonus",
			"SELECT T1.name FROM employee AS T1 JOIN evaluation AS T2 ON T1.employee_id = T2.employee_id ORDER BY T2.bonus DESC LIMIT 1"),
		mk("which employees are older than 30", "SELECT name FROM employee WHERE age > 30"),
		mk("what is the age of employees living in Austin", "SELECT age FROM employee WHERE city = 'Austin'"),
		mk("how many employees live in each city", "SELECT city, COUNT(*) FROM employee GROUP BY city"),
		mk("what is the average bonus", "SELECT AVG(bonus) FROM evaluation"),
		mk("how many employees are there", "SELECT COUNT(*) FROM employee"),
		mk("which shop has the most products", "SELECT shop_name FROM shop ORDER BY number_products DESC LIMIT 1"),
		mk("who is the oldest employee", "SELECT name FROM employee ORDER BY age DESC LIMIT 1"),
		mk("list the cities employees live in", "SELECT city FROM employee"),
	}
}

func trainedSystem(t *testing.T, opts core.Options) *core.System {
	t.Helper()
	if opts.GeneralizeSize == 0 {
		opts.GeneralizeSize = 300
	}
	if opts.RetrievalK == 0 {
		opts.RetrievalK = 10
	}
	opts.EncoderEpochs = 12
	opts.RerankEpochs = 40
	opts.Seed = 42
	sys := core.New(schematest.Employee(), opts)
	sys.Prepare(employeeSamples())
	if err := sys.Train(employeeExamples()); err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestEndToEndFig1(t *testing.T) {
	sys := trainedSystem(t, core.Options{})
	// The paper's running example: the query both GAP and SMBOP
	// mistranslate must rank first for GAR.
	tr, err := sys.Translate("find the name of the employee who got the highest one time bonus")
	if err != nil {
		t.Fatal(err)
	}
	if tr.Top == nil {
		t.Fatal("no translation")
	}
	gold := sqlparse.MustParse(
		"SELECT T1.name FROM employee AS T1 JOIN evaluation AS T2 ON T1.employee_id = T2.employee_id ORDER BY T2.bonus DESC LIMIT 1")
	if !norm.ExactMatch(tr.Top.SQL, gold) {
		t.Errorf("top translation wrong:\n got: %s\nwant: %s\ndialect: %s", tr.Top.SQL, gold, tr.Top.Dialect)
	}
}

func TestEndToEndTrainingAccuracy(t *testing.T) {
	sys := trainedSystem(t, core.Options{})
	correct := 0
	for _, ex := range employeeExamples() {
		tr, err := sys.Translate(ex.NL)
		if err != nil {
			t.Fatal(err)
		}
		if tr.Top != nil && norm.ExactMatch(tr.Top.SQL, sys.BindGold(ex.Gold)) {
			correct++
		}
	}
	if correct < 7 {
		t.Errorf("training-set accuracy too low: %d/9", correct)
	}
}

func TestComponentSimilarGeneralization(t *testing.T) {
	// An NL query whose gold SQL is NOT a sample but is component-similar
	// (the Fig. 1 "age" variant) must be answerable.
	sys := trainedSystem(t, core.Options{GeneralizeSize: 2000, RetrievalK: 50})
	want := sys.BindGold(sqlparse.MustParse(
		"SELECT T1.age FROM employee AS T1 JOIN evaluation AS T2 ON T1.employee_id = T2.employee_id ORDER BY T2.bonus DESC LIMIT 1"))
	if !sys.HasCandidate(want) {
		t.Fatal("component-similar target missing from pool")
	}
	tr, err := sys.Translate("find the age of the employee who got the highest one time bonus")
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for i, c := range tr.Ranked {
		if i >= 10 {
			break
		}
		if norm.ExactMatch(c.SQL, want) {
			found = true
			break
		}
	}
	if !found {
		t.Errorf("component-similar gold not in top-10; top dialect: %s", tr.Top.Dialect)
	}
}

func TestValuePostProcessing(t *testing.T) {
	sys := trainedSystem(t, core.Options{})
	in := engine.NewInstance(sys.DB)
	n, s := engine.Num, engine.Str
	in.MustInsert("employee", n(1), s("George"), n(45), s("Madrid"))
	in.MustInsert("employee", n(2), s("John"), n(32), s("Austin"))
	sys.SetContent(in)

	tr, err := sys.Translate("what is the age of employees living in Austin")
	if err != nil {
		t.Fatal(err)
	}
	if tr.Top == nil {
		t.Fatal("no translation")
	}
	got := tr.Top.SQL.String()
	if !strings.Contains(strings.ToLower(got), "city = 'austin'") {
		t.Errorf("value not instantiated: %s", got)
	}
	// The instantiated query must execute.
	res, err := in.Exec(tr.Top.SQL)
	if err != nil {
		t.Fatalf("translated query does not execute: %v", err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].String() != "32" {
		t.Errorf("execution result wrong: %v", res.Rows)
	}
}

func TestErrorAttributionHooks(t *testing.T) {
	sys := trainedSystem(t, core.Options{})
	gold := employeeExamples()[0].Gold
	if !sys.HasCandidate(gold) {
		t.Error("sample gold must be in the pool")
	}
	if sys.HasCandidate(sqlparse.MustParse("SELECT is_full_time FROM hiring")) {
		t.Error("foreign query must not be in the pool")
	}
	if !sys.RetrievalContains(employeeExamples()[0].NL, gold, 10) {
		t.Error("gold should be retrieved in top-10 for its own NL")
	}
}

func TestAblationNoRerank(t *testing.T) {
	sys := trainedSystem(t, core.Options{NoRerank: true})
	tr, err := sys.Translate("how many employees are there")
	if err != nil {
		t.Fatal(err)
	}
	if tr.Top == nil {
		t.Fatal("no translation under retrieval-only mode")
	}
}

func TestAblationNoDialect(t *testing.T) {
	sys := trainedSystem(t, core.Options{NoDialect: true})
	// The pool must contain raw SQL strings.
	for _, c := range sys.Pool()[:3] {
		if !strings.HasPrefix(c.Dialect, "SELECT") {
			t.Fatalf("expected raw SQL in ablation pool, got %q", c.Dialect)
		}
	}
	if _, err := sys.Translate("how many employees are there"); err != nil {
		t.Fatal(err)
	}
}

func TestLifecycleErrors(t *testing.T) {
	sys := core.New(schematest.Employee(), core.Options{})
	if _, err := sys.Translate("anything"); err == nil {
		t.Error("Translate before Train must fail")
	}
	if err := sys.Train(nil); err == nil {
		t.Error("Train before Prepare must fail")
	}
	if err := sys.UseModels(&core.Models{}); err == nil {
		t.Error("UseModels before Prepare must fail")
	}
}

func TestCrossDatabaseDeployment(t *testing.T) {
	// Train models on the employee database, deploy on flights: the
	// paper's unseen-database setting. The deployed system must produce
	// reasonable translations via the transferable lexical models.
	trainSys := trainedSystem(t, core.Options{})
	models, err := core.TrainModels(
		[]core.TrainingSet{{Sys: trainSys, Examples: employeeExamples()}},
		trainSys.Opts)
	if err != nil {
		t.Fatal(err)
	}

	flights := schematest.Flights()
	valSys := core.New(flights, core.Options{GeneralizeSize: 200, RetrievalK: 10, Seed: 7})
	valSys.Prepare([]*sqlast.Query{
		sqlparse.MustParse("SELECT country FROM airlines WHERE airline = 'JetBlue'"),
		sqlparse.MustParse("SELECT COUNT(*) FROM flights"),
		sqlparse.MustParse("SELECT airline FROM airlines"),
	})
	if err := valSys.UseModels(models); err != nil {
		t.Fatal(err)
	}
	tr, err := valSys.Translate("how many flights are there")
	if err != nil {
		t.Fatal(err)
	}
	if tr.Top == nil {
		t.Fatal("no translation on unseen database")
	}
	want := valSys.BindGold(sqlparse.MustParse("SELECT COUNT(*) FROM flights"))
	found := false
	for i, c := range tr.Ranked {
		if i >= 3 {
			break
		}
		if norm.ExactMatch(c.SQL, want) {
			found = true
		}
	}
	if !found {
		t.Errorf("count query not in top-3 on unseen database; top: %s", tr.Top.SQL)
	}
}
