package core_test

import (
	"context"
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/faults"
)

var errInjected = errors.New("injected retrieval fault")

// sameTranslation compares two translations candidate by candidate,
// including scores — the cached answer must be indistinguishable from a
// recomputed one.
func sameTranslation(t *testing.T, a, b *core.Translation) {
	t.Helper()
	if a.Generation != b.Generation {
		t.Fatalf("generations differ: %d vs %d", a.Generation, b.Generation)
	}
	if len(a.Ranked) != len(b.Ranked) {
		t.Fatalf("ranked lengths differ: %d vs %d", len(a.Ranked), len(b.Ranked))
	}
	for i := range a.Ranked {
		if a.Ranked[i].SQL.String() != b.Ranked[i].SQL.String() ||
			a.Ranked[i].Dialect != b.Ranked[i].Dialect ||
			a.Ranked[i].Score != b.Ranked[i].Score {
			t.Fatalf("rank %d differs:\n %+v\n %+v", i, a.Ranked[i], b.Ranked[i])
		}
	}
}

func TestTranslateCacheHit(t *testing.T) {
	sys := trainedSystem(t, core.Options{})
	nl := "how many employees are there"
	first, err := sys.Translate(nl)
	if err != nil {
		t.Fatal(err)
	}
	second, err := sys.Translate(nl)
	if err != nil {
		t.Fatal(err)
	}
	sameTranslation(t, first, second)
	st := sys.CacheStats()
	if st.Translations.Hits != 1 || st.Translations.Misses != 1 {
		t.Errorf("translation cache stats = %+v", st.Translations)
	}
	// The two results must not alias: truncating one leaves the other
	// (and the cache's copy) intact.
	first.Ranked = first.Ranked[:0]
	third, err := sys.Translate(nl)
	if err != nil {
		t.Fatal(err)
	}
	sameTranslation(t, second, third)
}

func TestEmbeddingCacheFeedsRetrieval(t *testing.T) {
	sys := trainedSystem(t, core.Options{})
	if _, err := sys.Translate("who is the oldest employee"); err != nil {
		t.Fatal(err)
	}
	st := sys.CacheStats()
	if st.Embeddings.Len != 1 || st.Embeddings.Misses != 1 {
		t.Errorf("embedding cache stats after first translate = %+v", st.Embeddings)
	}
}

func TestCacheInvalidatedBySwap(t *testing.T) {
	sys, models := swapSystem(t, core.Options{})
	nl := "how many employees are there"
	first, err := sys.Translate(nl)
	if err != nil {
		t.Fatal(err)
	}
	gen, err := sys.Swap(employeeSamples()[:5], models)
	if err != nil {
		t.Fatal(err)
	}
	second, err := sys.Translate(nl)
	if err != nil {
		t.Fatal(err)
	}
	if second.Generation != gen {
		t.Fatalf("post-swap translation served generation %d, want %d", second.Generation, gen)
	}
	if first.Generation == second.Generation {
		t.Fatal("swap did not change the generation")
	}
	if st := sys.CacheStats(); st.Translations.Hits != 0 {
		t.Errorf("stale entry served across swap: %+v", st.Translations)
	}
}

func TestNoCacheOption(t *testing.T) {
	sys := trainedSystem(t, core.Options{NoCache: true})
	nl := "how many employees are there"
	for i := 0; i < 2; i++ {
		if _, err := sys.Translate(nl); err != nil {
			t.Fatal(err)
		}
	}
	if st := sys.CacheStats(); st != (core.CacheStats{}) {
		t.Errorf("NoCache system reported cache activity: %+v", st)
	}
}

func TestFaultInjectorBypassesCache(t *testing.T) {
	sys := trainedSystem(t, core.Options{})
	nl := "how many employees are there"
	if _, err := sys.Translate(nl); err != nil {
		t.Fatal(err)
	}
	// With an injector killing retrieval, the cached answer must NOT be
	// served: the harness is probing the live path.
	inj := faults.NewInjector(1).Fail(faults.Retrieval, errInjected)
	sys.SetFaultInjector(inj)
	if _, err := sys.TranslateContext(context.Background(), nl); err == nil {
		t.Fatal("injected retrieval fault was masked by the cache")
	}
	// Removing the injector purges and re-enables the caches.
	sys.SetFaultInjector(nil)
	if _, err := sys.Translate(nl); err != nil {
		t.Fatal(err)
	}
}
