package core

import (
	"reflect"
	"testing"

	"repro/internal/feedback"
	"repro/internal/ltr"
	"repro/internal/schema/schematest"
	"repro/internal/sqlast"
	"repro/internal/sqlparse"
)

// foldFeedback must be replay-idempotent: folding the same WAL twice —
// or a WAL with recovered duplicates — yields an identical corpus, so
// a crash-recovered log retrains to the same candidate.
func TestFoldFeedbackIdempotent(t *testing.T) {
	sys := New(schematest.Employee(), Options{})
	base := TrainingData{
		Samples: []*sqlast.Query{
			sqlparse.MustParse("SELECT name FROM employee"),
		},
		Examples: []ltr.Example{
			{NL: "list names", Gold: sqlparse.MustParse("SELECT name FROM employee")},
		},
	}
	records := []feedback.Record{
		{Seq: 1, Question: "count employees", SQL: "SELECT COUNT(*) FROM employee", Source: feedback.SourceChosen},
		{Seq: 2, Question: "all cities", SQL: "SELECT city FROM employee", Source: feedback.SourceCorrected},
		// Duplicate of the base example: must not grow the corpus.
		{Seq: 3, Question: "list names", SQL: "SELECT name FROM employee", Source: feedback.SourceChosen},
		// Unparseable / unbindable records are skipped, not fatal.
		{Seq: 4, Question: "bad", SQL: "SELEC nope", Source: feedback.SourceCorrected},
		{Seq: 5, Question: "bad table", SQL: "SELECT x FROM nosuch", Source: feedback.SourceCorrected},
	}

	s1, e1, p1 := foldFeedback(sys, base, records)
	s2, e2, p2 := foldFeedback(sys, base, append(append([]feedback.Record(nil), records...), records...))
	if !reflect.DeepEqual(printAll(s1), printAll(s2)) {
		t.Fatalf("samples not idempotent:\n once:  %v\n twice: %v", printAll(s1), printAll(s2))
	}
	if len(e1) != len(e2) || len(p1) != len(p2) {
		t.Fatalf("examples/pairs not idempotent: %d/%d vs %d/%d", len(e1), len(p1), len(e2), len(p2))
	}
	// base sample + count + city; the duplicate and the two invalid
	// records add nothing.
	if len(s1) != 3 {
		t.Fatalf("folded samples = %v, want 3", printAll(s1))
	}
	// base example + count + city (the name duplicate is deduped).
	if len(e1) != 3 || len(p1) != 2 {
		t.Fatalf("folded examples/pairs = %d/%d, want 3/2", len(e1), len(p1))
	}
	if p1[0].NL != "count employees" || p1[1].NL != "all cities" {
		t.Fatalf("pairs out of log order: %q, %q", p1[0].NL, p1[1].NL)
	}
}

func printAll(qs []*sqlast.Query) []string {
	out := make([]string, len(qs))
	for i, q := range qs {
		out[i] = q.String()
	}
	return out
}

func TestShadowEvalSetHoldout(t *testing.T) {
	base := []ltr.Example{{NL: "a"}, {NL: "b"}}
	pairs := []ltr.Example{{NL: "p1"}, {NL: "p2"}, {NL: "p3"}}
	got := shadowEvalSet(base, pairs, 2)
	if len(got) != 4 || got[2].NL != "p2" || got[3].NL != "p3" {
		t.Fatalf("holdout kept the wrong pairs: %+v", got)
	}
	if all := shadowEvalSet(base, pairs, 10); len(all) != 5 {
		t.Fatalf("holdout larger than pairs must keep all: %d", len(all))
	}
}
