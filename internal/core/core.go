// Package core assembles the complete GAR system of the paper: the data
// preparation process (compositional generalization + dialect building),
// the two-stage learning-to-rank translation pipeline, the GAR-J join
// annotation mode, and the value post-processing step. It exposes the
// per-stage hooks the evaluation harness needs for error attribution
// (Table 9): data-preparation misses, retrieval misses and re-ranking
// misses.
package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/breaker"
	"repro/internal/dialect"
	"repro/internal/embed"
	"repro/internal/engine"
	"repro/internal/execguide"
	"repro/internal/faults"
	"repro/internal/generalize"
	"repro/internal/ltr"
	"repro/internal/memgov"
	"repro/internal/nn"
	"repro/internal/parallel"
	"repro/internal/rerank"
	"repro/internal/schema"
	"repro/internal/sqlast"
	"repro/internal/text"
	"repro/internal/transcache"
	"repro/internal/values"
	"repro/internal/vector"
	"repro/internal/vindex"
)

// StageBudget caps each translation stage at a fraction of the time
// remaining until the request deadline when the stage starts, so one
// slow stage cannot eat the entire deadline and starve the stages (and
// fallbacks) behind it. A fraction outside (0,1) disables budgeting
// for that stage, and a context without a deadline is never budgeted.
// The zero value disables all budgeting.
type StageBudget struct {
	Retrieval   float64
	Rerank      float64
	Postprocess float64
	ExecGuide   float64
}

// Options configures a GAR system. The zero value gives the paper's
// defaults scaled down to laptop sizes.
type Options struct {
	// GeneralizeSize caps the generalized query set per database
	// (paper: 20,000). Default 2,000.
	GeneralizeSize int
	// RetrievalK is the first-stage threshold k (paper: 100).
	RetrievalK int
	// Seed drives every random choice in the system.
	Seed int64
	// JoinAnnotations enables GAR-J: the dialect builder uses the
	// database's join annotations.
	JoinAnnotations bool
	// NoDialect is the "w/o Dialect Builder" ablation: the ranking
	// models see raw SQL strings instead of dialect expressions.
	NoDialect bool
	// NoRerank is the "w/o Re-ranking Model" ablation: the retrieval
	// order is final.
	NoRerank bool
	// UseIVF selects the clustered vector index instead of the exact
	// flat index for first-stage retrieval.
	UseIVF bool
	// EncoderEpochs / RerankEpochs control training length.
	EncoderEpochs int
	RerankEpochs  int
	// RerankTrainK is the list length used to train the re-ranker
	// (paper: 100, batch-limited). Default: RetrievalK.
	RerankTrainK int
	// StageBudget derives per-stage deadlines from the request
	// deadline; see StageBudget. Zero disables.
	StageBudget StageBudget
	// Workers bounds the fan-out of parallel sections — pool encoding
	// at snapshot build, batched retrieval, and re-rank scoring.
	// 0 means one worker per CPU; 1 forces the sequential path.
	Workers int
	// CacheSize caps each translation-path cache (question embeddings,
	// full translations) in entries. Default 1024. See NoCache.
	CacheSize int
	// NoCache disables the translation-path caches entirely (the
	// benchmark's cold path, and a debugging escape hatch).
	NoCache bool
	// ExecGuide enables execution-guided reranking: after value
	// post-processing the top ExecTopK candidates are executed against
	// a deterministic seeded sample instance and candidates that error,
	// exceed ExecBudget, or return degenerate results are demoted (see
	// internal/execguide). Off by default.
	ExecGuide bool
	// ExecBudget caps one candidate's execution wall time under
	// ExecGuide (default 25ms).
	ExecBudget time.Duration
	// ExecTopK is how many of the best-ranked candidates ExecGuide
	// executes (default 8).
	ExecTopK int
	// MemBudget caps the bytes of retained state (candidate pool,
	// dialect embeddings, pool-build buffers) this system may hold;
	// 0 means unbudgeted. The fleet overrides it per tenant through
	// SetResources.
	MemBudget int64
	// SpillDir is where streaming pool builds spill candidate records
	// once the RAM buffer budget trips. Empty disables spilling:
	// buffer pressure then truncates the pool instead (Degraded).
	SpillDir string
	// SpillBufferBytes caps the in-RAM record buffer of a streaming
	// pool build before it overflows to SpillDir. 0 derives a quarter
	// of the effective budget limit.
	SpillBufferBytes int64
}

func (o *Options) fill() {
	if o.GeneralizeSize <= 0 {
		o.GeneralizeSize = 2000
	}
	if o.RetrievalK <= 0 {
		o.RetrievalK = 100
	}
	if o.EncoderEpochs <= 0 {
		o.EncoderEpochs = 6
	}
	if o.RerankEpochs <= 0 {
		o.RerankEpochs = 8
	}
	if o.RerankTrainK <= 0 {
		o.RerankTrainK = o.RetrievalK
	}
	if o.CacheSize <= 0 {
		o.CacheSize = 1024
	}
	if o.ExecBudget <= 0 {
		o.ExecBudget = 25 * time.Millisecond
	}
	if o.ExecTopK <= 0 {
		o.ExecTopK = 8
	}
}

// state is one immutable published snapshot of the system: the
// candidate pool, its lookup index, the deployed models and pipeline,
// the value linker and the fault injector — everything a translation
// reads. A state is never mutated after publication; mutators build a
// fresh one and publish it with a single atomic pointer swap, so a
// translation that loaded a state once sees a consistent
// {pool, index, models} triple for its whole lifetime.
type state struct {
	// gen is the pool generation, bumped by every Prepare/Swap that
	// replaces the candidate pool.
	gen       uint64
	pool      []ltr.Candidate
	poolIdx   *ltr.PoolIndex
	encoder   *embed.Encoder
	pipeline  *ltr.Pipeline
	linker    *values.Linker
	// guide, when non-nil, is the execution-guided reranking stage's
	// seeded sample instance; rebuilt by SetContent so seeded rows draw
	// from the spec's value index.
	guide     *execguide.Guide
	prepStats generalize.Stats
	// info is the resource-governance record of the build that produced
	// this snapshot's pool: degradation flag and reason, spill gauges.
	info    buildInfo
	trained bool
	inj     *faults.Injector
}

// System is a GAR instance bound to one database.
//
// A System is safe for concurrent Translate/TranslateContext calls.
// State mutations (Prepare, Train, UseModels, Swap, SetContent) build
// a complete new snapshot off to the side and publish it with one
// atomic pointer swap: translations never block on a rebuild — they
// keep running against the snapshot they loaded — and never observe a
// half-updated system.
type System struct {
	DB   *schema.Database
	Opts Options

	// builder is immutable after New.
	builder *dialect.Builder

	// writeMu serializes mutators; readers never take it.
	writeMu sync.Mutex
	// samples and content feed the exec-guide's seeded sample instance
	// (literal harvesting and cell values); both are writeMu-guarded and
	// only read to rebuild the guide inside a mutation.
	samples []*sqlast.Query
	content *engine.Instance
	// state is the published snapshot; see the state type.
	state atomic.Pointer[state]
	// rerankBreaker, when set, circuit-breaks the re-ranking stage;
	// see SetRerankBreaker.
	rerankBreaker atomic.Pointer[breaker.Breaker]

	// publishHook, when set, runs after every snapshot publication; see
	// SetPublishHook.
	publishHook atomic.Pointer[func()]

	// Exec-guide counters, maintained lock-free by the translate path;
	// see ExecGuideStats.
	execExecuted atomic.Uint64
	execDemoted  atomic.Uint64
	execErrors   atomic.Uint64
	execTimeouts atomic.Uint64

	// resources carries the memory budget and spill directory every
	// pool build reads; installed by New from Options, overridden per
	// tenant by SetResources.
	resources atomic.Pointer[resources]
	// snapMem accounts the published snapshot's candidate-pool bytes
	// and vecMem its dialect-embedding bytes, both against the budget.
	// They are writeMu-guarded and replaced at each publication that
	// rebuilds the matching half (a model redeploy replaces only the
	// embeddings); snapBytes mirrors their sum for lock-free gauges.
	snapMem   *memgov.Reservation
	vecMem    *memgov.Reservation
	snapBytes atomic.Int64
	// memDegradedBuilds counts snapshot builds that finished degraded
	// under resource pressure; see MemStats.
	memDegradedBuilds atomic.Uint64

	// embedCache memoizes question embeddings and transCache whole
	// translation results, both keyed by (pool generation, NL question).
	// The generation key makes every Prepare/Swap an implicit flush: an
	// entry from an older snapshot can never be served after a hot
	// reload. Nil when Options.NoCache is set (a nil cache never hits).
	embedCache *transcache.Cache[vector.Vec]
	transCache *transcache.Cache[*Translation]
}

// New creates a GAR system for the database.
func New(db *schema.Database, opts Options) *System {
	opts.fill()
	s := &System{DB: db, Opts: opts}
	if opts.JoinAnnotations {
		s.builder = dialect.NewJ(db)
	} else {
		s.builder = dialect.New(db)
	}
	st := &state{linker: values.NewLinker(db, nil)}
	if opts.ExecGuide {
		st.guide = execguide.New(db, nil, execguide.Seeds{}, s.guideConfig())
	}
	s.state.Store(st)
	var budget *memgov.Budget
	if opts.MemBudget > 0 {
		budget = memgov.New("system", opts.MemBudget)
	}
	s.resources.Store(&resources{budget: budget, spillDir: opts.SpillDir, bufBytes: opts.SpillBufferBytes})
	if !opts.NoCache {
		s.embedCache = transcache.New[vector.Vec](s.Opts.CacheSize)
		s.transCache = transcache.New[*Translation](s.Opts.CacheSize)
		s.governCaches(budget)
	}
	return s
}

// CacheStats reports the hit/miss/size counters of the translation-path
// caches; all-zero when caching is disabled.
type CacheStats struct {
	Embeddings   transcache.Stats `json:"embeddings"`
	Translations transcache.Stats `json:"translations"`
}

// CacheStats returns a point-in-time snapshot of the cache counters.
func (s *System) CacheStats() CacheStats {
	return CacheStats{
		Embeddings:   s.embedCache.Stats(),
		Translations: s.transCache.Stats(),
	}
}

// purgeCaches drops every cached embedding and translation. Mutators
// whose changes are not visible in the pool generation (a new linker, a
// model redeploy on the same pool) call it so a stale result can never
// outlive the state that produced it.
func (s *System) purgeCaches() {
	s.embedCache.Purge()
	s.transCache.Purge()
}

// guideConfig maps the exec-guide options onto the guide's tunables.
func (s *System) guideConfig() execguide.Config {
	return execguide.Config{TopK: s.Opts.ExecTopK, Budget: s.Opts.ExecBudget}
}

// buildGuide reseeds the exec-guide sample instance from the current
// content and sample queries: content donates realistic cell values,
// the samples donate the literal filter values candidates are likely to
// carry after value post-processing. Callers must hold writeMu (samples
// and content are writeMu-guarded); the build itself is a few dozen
// row inserts and stays cheap enough to run inside the mutation.
func (s *System) buildGuide() *execguide.Guide {
	if !s.Opts.ExecGuide {
		return nil
	}
	return execguide.New(s.DB, s.content, execguide.HarvestSeeds(s.DB, s.samples), s.guideConfig())
}

// SetContent attaches a populated instance used for value linking in the
// post-processing step (cell-value → column hints). Under ExecGuide the
// execution guide's sample instance is reseeded from the same content,
// so executed candidates see realistic cell values.
func (s *System) SetContent(content *engine.Instance) {
	// The linker rebuild is the expensive part and only reads the
	// content; run it outside the snapshot mutation.
	linker := values.NewLinker(s.DB, content)
	s.mutate(func(st *state) {
		st.linker = linker
		s.content = content
		if guide := s.buildGuide(); guide != nil {
			st.guide = guide
		}
	})
}

// SetFaultInjector installs a fault injector fired at every stage
// boundary of TranslateContext. Pass nil to disable. Intended for the
// fault-injection test harness and resilience soak runs.
func (s *System) SetFaultInjector(inj *faults.Injector) {
	s.mutate(func(st *state) {
		st.inj = inj
	})
}

// SetRerankBreaker installs a circuit breaker guarding the re-ranking
// stage: when the breaker refuses a call, the stage is skipped outright
// and the translation degrades to retrieval order without paying the
// failure cost. Stage outcomes (success, error, timeout) are reported
// to the breaker; client cancellations are forgiven. Pass nil to
// disable.
func (s *System) SetRerankBreaker(b *breaker.Breaker) {
	s.rerankBreaker.Store(b)
}

// SetPublishHook registers fn to run after every snapshot publication
// (Prepare, UseModels, Swap, SetContent, RestoreCheckpoint, …). The
// hook runs on the mutator's goroutine with the write lock held, so it
// must be fast, must not block, and must not call back into System
// mutators — a non-blocking channel send is the intended shape. At most
// one hook is installed; pass nil to remove it. The background
// checkpointer uses this as its dirty signal.
func (s *System) SetPublishHook(fn func()) {
	if fn == nil {
		s.publishHook.Store(nil)
		return
	}
	s.publishHook.Store(&fn)
}

// publish is the single publication point of a new snapshot: the atomic
// store makes it visible to readers, then the publish hook (if any) is
// signalled. Callers hold writeMu.
func (s *System) publish(next *state) {
	s.state.Store(next)
	if fn := s.publishHook.Load(); fn != nil {
		(*fn)()
	}
}

// mutate publishes a new snapshot derived from the current one: fn
// edits a shallow copy, and the single atomic store is the publication
// point.
func (s *System) mutate(fn func(st *state)) {
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	next := *s.state.Load()
	fn(&next)
	s.publish(&next)
	// Whatever changed (linker, injector, pool), results computed
	// against the old state must not be served against the new one.
	s.purgeCaches()
}

// Prepare runs the offline data preparation process (Fig. 2 steps 1-2):
// generalizes the sample queries and renders each generalized query as a
// dialect expression, building the candidate pool. The new pool starts
// a new generation and un-deploys any trained pipeline (it indexes the
// old pool); use Swap to replace pool and models in one step with no
// untrained window.
func (s *System) Prepare(samples []*sqlast.Query) {
	// Generalization is the expensive part; with copy-on-write
	// snapshots it runs off to the side and in-flight translations keep
	// serving the old snapshot untouched.
	build := s.buildPoolGoverned(samples)
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	next := *s.state.Load()
	next.gen++
	next.prepStats = build.stats
	next.pool = build.pool
	next.poolIdx = build.idx
	next.info = build.info
	next.encoder = nil
	next.pipeline = nil
	next.trained = false
	s.samples = samples
	if guide := s.buildGuide(); guide != nil {
		next.guide = guide
	}
	s.adoptSnapMem(build.mem, nil)
	s.publish(&next)
	s.purgeCaches()
}

// expression renders a candidate for ranking: a dialect expression, or
// the raw SQL string under the w/o-Dialect-Builder ablation.
func (s *System) expression(q *sqlast.Query) string {
	if s.Opts.NoDialect {
		return q.String()
	}
	return s.builder.Express(q)
}

// PrepStats reports the generalization statistics of the last Prepare.
func (s *System) PrepStats() generalize.Stats {
	return s.state.Load().prepStats
}

// PoolSize returns the candidate pool size.
func (s *System) PoolSize() int {
	return len(s.state.Load().pool)
}

// Generation reports the current pool generation: 0 before the first
// Prepare, bumped by every Prepare or Swap. Translation results record
// the generation they were served from.
func (s *System) Generation() uint64 {
	return s.state.Load().gen
}

// Ready reports whether a translatable snapshot is published: a
// prepared pool with deployed models. False during the window between
// process start (or a Prepare) and the completing UseModels/Train/Swap.
func (s *System) Ready() bool {
	return s.state.Load().trained
}

// snapshot returns the current pool and its index. The returned slice
// is never mutated after publication (mutators swap in a fresh one),
// so callers may use it lock-free.
func (s *System) snapshot() ([]ltr.Candidate, *ltr.PoolIndex) {
	st := s.state.Load()
	return st.pool, st.poolIdx
}

// PoolDialects returns the dialect rendering of every candidate in the
// current pool snapshot, in pool order. Generalization is seeded, so a
// given sample set always produces the same dialect set — which lets
// tests map a Translation.Generation back to the pool that served it.
func (s *System) PoolDialects() []string {
	pool, _ := s.snapshot()
	out := make([]string, len(pool))
	for i, c := range pool {
		out[i] = c.Dialect
	}
	return out
}

// HasCandidate reports whether the pool contains a query exact-matching
// gold; false means a data-preparation miss.
func (s *System) HasCandidate(gold *sqlast.Query) bool {
	_, idx := s.snapshot()
	return idx != nil && idx.Find(s.BindGold(gold)) >= 0
}

// BindGold resolves a benchmark gold query against this database so its
// canonical form is comparable with the (bound) candidate pool. The
// original query is not modified; an unbindable query is returned as-is.
func (s *System) BindGold(q *sqlast.Query) *sqlast.Query {
	if q == nil {
		return nil
	}
	c := q.Clone()
	if err := s.DB.Bind(c); err != nil {
		return q
	}
	return c
}

// bindExamples rebinds every example's gold query against this database.
func (s *System) bindExamples(examples []ltr.Example) []ltr.Example {
	out := make([]ltr.Example, len(examples))
	for i, ex := range examples {
		out[i] = ltr.Example{NL: ex.NL, Gold: s.BindGold(ex.Gold)}
	}
	return out
}

// Models holds the trained cross-database ranking models: the paper
// fine-tunes one retrieval encoder and one re-ranker per benchmark on
// the train-split databases and applies them to the unseen validation
// databases.
type Models struct {
	Encoder  *embed.Encoder
	Reranker *rerank.Model // nil under the w/o-Re-ranking ablation
}

// TrainingSet couples a prepared per-database System with its (NL, gold)
// training examples.
type TrainingSet struct {
	Sys      *System
	Examples []ltr.Example
}

// TrainModels fits the two-stage ranking models on the training sets,
// following the paper's training phase (Fig. 3): triplets for the
// retrieval encoder over each database's candidate pool, then top-k
// listwise groups for the re-ranker. Every set's System must be
// Prepared.
func TrainModels(sets []TrainingSet, opts Options) (*Models, error) {
	opts.fill()
	// Snapshot each system's pool once up front: training then proceeds
	// lock-free even if a concurrent Prepare swaps a pool underneath.
	pools := make([][]ltr.Candidate, len(sets))
	poolIdxs := make([]*ltr.PoolIndex, len(sets))
	var corpus []string
	for i, set := range sets {
		pools[i], poolIdxs[i] = set.Sys.snapshot()
		if len(pools[i]) == 0 {
			return nil, fmt.Errorf("core: TrainModels with unprepared system for %s", set.Sys.DB.Name)
		}
		sets[i].Examples = set.Sys.bindExamples(set.Examples)
		for _, c := range pools[i] {
			corpus = append(corpus, c.Dialect)
		}
		for _, ex := range sets[i].Examples {
			corpus = append(corpus, ex.NL)
		}
	}

	// Retrieval model.
	encoder := embed.NewEncoder(embed.Config{Seed: opts.Seed})
	encoder.FitIDF(corpus)
	var triplets []embed.Triplet
	for i, set := range sets {
		triplets = append(triplets,
			ltr.BuildTriplets(set.Examples, pools[i], poolIdxs[i], 4, opts.Seed+int64(i)+1)...)
	}
	encoder.Train(triplets, embed.TrainConfig{Epochs: opts.EncoderEpochs})

	m := &Models{Encoder: encoder}
	if opts.NoRerank {
		return m, nil
	}

	// Re-ranking model over per-database retrieval top-k lists.
	x := &rerank.Extractor{IDF: text.NewIDF(corpus), Encoder: encoder}
	model, err := rerank.New(x, opts.Seed+3)
	if err != nil {
		return nil, err
	}
	var lists []rerank.TrainingList
	for i := range sets {
		index, vecs := buildIndex(pools[i], encoder, opts)
		pipe := &ltr.Pipeline{
			Encoder:  encoder,
			Index:    index,
			Pool:     pools[i],
			PoolIdx:  poolIdxs[i],
			K:        opts.RetrievalK,
			DialVecs: vecs,
			Costs:    poolCosts(pools[i]),
			Workers:  opts.Workers,
		}
		lists = append(lists, pipe.BuildLists(sets[i].Examples, opts.RerankTrainK)...)
	}
	model.Train(lists, nn.TrainConfig{Epochs: opts.RerankEpochs, Seed: opts.Seed + 4})
	m.Reranker = model
	return m, nil
}

// buildIndex embeds and indexes the pool. The per-candidate encodes —
// the dominant cost of a snapshot build — fan out across opts.Workers;
// the returned vecs (aligned with pool) are the exact vectors the index
// stores, handed to the pipeline so re-rank scoring never re-encodes a
// dialect.
//
//garlint:allow ctxpass errlost -- snapshot build: no caller context to thread, and the ForEach body never returns an error
func buildIndex(pool []ltr.Candidate, encoder *embed.Encoder, opts Options) (vindex.Index, []vector.Vec) {
	vecs := make([]vector.Vec, len(pool))
	// The body never fails and the context cannot be cancelled.
	_ = parallel.ForEach(context.Background(), len(pool), opts.Workers, func(i int) error {
		vecs[i] = encoder.Encode(pool[i].Dialect)
		return nil
	})
	return indexFromVecs(vecs, opts), vecs
}

// indexFromVecs assembles (and, for IVF, eagerly builds) a vector index
// over already-computed embeddings. It is the shared tail of a fresh
// snapshot build and a checkpoint restore — a warm start feeds the
// persisted vectors straight in and never re-encodes the pool.
func indexFromVecs(vecs []vector.Vec, opts Options) vindex.Index {
	var index vindex.Index
	if opts.UseIVF {
		nlist := len(vecs) / 64
		if nlist < 4 {
			nlist = 4
		}
		index = vindex.NewIVF(nlist, nlist/4+1, opts.Seed+2)
	} else {
		index = vindex.NewFlat()
	}
	for i := range vecs {
		index.Add(i, vecs[i])
	}
	// Train the coarse quantizer eagerly so the first online query does
	// not pay (or race on) the k-means build.
	if iv, ok := index.(*vindex.IVF); ok {
		iv.Build()
	}
	return index
}

// poolCosts computes the static estimated-cost feature of every pool
// candidate (see execguide.CostFeature); the re-ranker reads it as an
// input feature, so every pipeline this package builds carries it.
func poolCosts(pool []ltr.Candidate) []float64 {
	out := make([]float64, len(pool))
	for i, c := range pool {
		out[i] = execguide.CostFeature(c.SQL)
	}
	return out
}

// UseModels deploys pre-trained models on this (prepared) system:
// the candidate pool is embedded and indexed with the trained encoder
// and the pipeline is assembled. This is how a system for an unseen
// validation database comes online.
func (s *System) UseModels(m *Models) error {
	// The write lock is held across the (slow) index build so the pool
	// cannot be swapped between reading it and publishing the pipeline
	// built over it; translations are unaffected — they read the old
	// snapshot lock-free until the new one is published.
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	cur := s.state.Load()
	if len(cur.pool) == 0 {
		return fmt.Errorf("core: UseModels before Prepare (empty candidate pool)")
	}
	// The embeddings get their own account against the budget; the pool
	// keeps the reservation Prepare adopted (shrunk on truncation).
	pipeline, pool, poolIdx, vecMem, truncated, err := newPipelineGoverned(
		cur.pool, cur.poolIdx, m, s.Opts, s.resources.Load().budget, s.snapMem)
	if err != nil {
		return err
	}
	next := *cur
	next.pool = pool
	next.poolIdx = poolIdx
	next.encoder = m.Encoder
	next.pipeline = pipeline
	next.trained = true
	if truncated {
		next.info.degrade(fmt.Sprintf("snapshot truncated to %d of %d candidates under memory budget",
			len(pool), len(cur.pool)))
		s.memDegradedBuilds.Add(1)
	}
	s.adoptSnapMem(s.snapMem, vecMem)
	s.publish(&next)
	// Same pool generation, new models: flush explicitly.
	s.purgeCaches()
	return nil
}

// Swap builds a complete new snapshot — candidate pool, dialect
// expressions, vector index and deployed models — entirely off to the
// side and publishes it with one atomic pointer swap. Unlike the
// Prepare+UseModels sequence there is no intermediate untrained
// window: translations serve the old snapshot until the instant the
// new one is complete, which is what makes zero-downtime hot reload
// possible. It returns the new pool generation.
func (s *System) Swap(samples []*sqlast.Query, m *Models) (uint64, error) {
	if m == nil || m.Encoder == nil {
		return 0, fmt.Errorf("core: Swap without models")
	}
	build := s.buildPoolGoverned(samples)
	if len(build.pool) == 0 {
		build.mem.Release()
		return 0, fmt.Errorf("core: Swap produced an empty candidate pool for %s", s.DB.Name)
	}
	pipeline, pool, idx, vecMem, truncated, err := newPipelineGoverned(
		build.pool, build.idx, m, s.Opts, s.resources.Load().budget, build.mem)
	if err != nil {
		build.mem.Release()
		return 0, err
	}
	if truncated {
		build.info.degrade(fmt.Sprintf("snapshot truncated to %d of %d candidates under memory budget",
			len(pool), len(build.pool)))
		s.memDegradedBuilds.Add(1)
	}

	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	next := *s.state.Load()
	next.gen++
	next.pool = pool
	next.poolIdx = idx
	next.prepStats = build.stats
	next.info = build.info
	next.encoder = m.Encoder
	next.pipeline = pipeline
	next.trained = true
	s.samples = samples
	if guide := s.buildGuide(); guide != nil {
		next.guide = guide
	}
	s.adoptSnapMem(build.mem, vecMem)
	s.publish(&next)
	// The generation bump already invalidates every cached entry; the
	// purge just releases their memory eagerly.
	s.purgeCaches()
	return next.gen, nil
}

// Train is the single-database convenience path (used for GEO, whose
// train and test sets share one database): it trains models on this
// system's own pool and examples, then deploys them.
func (s *System) Train(examples []ltr.Example) error {
	m, err := TrainModels([]TrainingSet{{Sys: s, Examples: examples}}, s.Opts)
	if err != nil {
		return err
	}
	return s.UseModels(m)
}

// Candidate is one ranked translation result after value post-processing.
type Candidate struct {
	SQL     *sqlast.Query
	Dialect string
	Score   float64
}

// Translation is the output of Translate.
type Translation struct {
	// Top is the best candidate (nil when the pool is empty).
	Top *Candidate
	// Ranked is the post-processed top-k list, best first.
	Ranked []Candidate
	// Generation is the pool generation of the snapshot that served
	// this translation; every candidate comes from that one snapshot.
	Generation uint64
	// Degraded reports that a non-fatal stage (re-ranking, value
	// post-processing or execution guidance) failed and a documented
	// fallback was used; the result is still usable but of reduced
	// quality.
	Degraded bool
	// Warnings describes each degradation that occurred.
	Warnings []string
	// Verdicts is the execution evidence of the exec-guide stage, one
	// entry per executed candidate indexed into the PRE-reorder ranked
	// list; nil when Options.ExecGuide is off or the stage degraded.
	Verdicts []execguide.Verdict
}

// Translate runs the full online pipeline on an NL query: two-stage
// ranking followed by value post-processing (candidate filtering by
// value-implied columns, then placeholder instantiation).
//
//garlint:allow ctxpass -- compatibility wrapper over TranslateContext
func (s *System) Translate(nl string) (*Translation, error) {
	return s.TranslateContext(context.Background(), nl)
}

// stageCtx derives a stage sub-context capped at frac of the time
// remaining before the parent deadline. With no deadline or a disabled
// fraction, the parent context is returned with a no-op cancel.
func stageCtx(ctx context.Context, frac float64) (context.Context, context.CancelFunc) {
	if frac <= 0 || frac >= 1 {
		return ctx, func() {}
	}
	dl, ok := ctx.Deadline()
	if !ok {
		return ctx, func() {}
	}
	rem := time.Until(dl)
	if rem <= 0 {
		return ctx, func() {}
	}
	return context.WithTimeout(ctx, time.Duration(float64(rem)*frac))
}

// TranslateContext is Translate with cancellation and stage-level fault
// isolation. Each stage runs inside a recover boundary, so a panic in a
// ranking stage surfaces as a *StageError instead of crashing the
// process, and the pipeline degrades gracefully:
//
//   - retrieval failure (or cancellation before/while retrieving) is
//     fatal: there is nothing to fall back to;
//   - re-ranking failure or timeout falls back to the retrieval-order
//     candidates, flagged Degraded; an installed rerank breaker
//     (SetRerankBreaker) that is open skips the stage outright with
//     the same fallback;
//   - value post-processing failure falls back to the ranked candidates
//     with placeholders left masked, flagged Degraded.
//
// When Options.StageBudget is set and the context has a deadline, each
// stage additionally runs under its own slice of the remaining
// deadline, so a pathologically slow stage degrades early instead of
// starving the stages behind it.
//
// TranslateContext is safe to call concurrently, loads the published
// snapshot exactly once, and therefore always sees one consistent
// {pool, index, models} generation even while Prepare/Swap rebuilds
// run concurrently.
func (s *System) TranslateContext(ctx context.Context, nl string) (*Translation, error) {
	st := s.state.Load()
	if !st.trained {
		return nil, fmt.Errorf("core: Translate before Train")
	}
	pipeline, linker, inj := st.pipeline, st.linker, st.inj

	// With a fault injector installed the caches step aside entirely:
	// the harness is probing the live stage boundaries, and a cached
	// answer would mask the injected fault. A context that is already
	// done also bypasses the cache, so cancellation fails with the same
	// stage attribution whether or not the answer happens to be cached.
	useCache := inj == nil && ctx.Err() == nil
	if useCache {
		if cached, ok := s.transCache.Get(st.gen, nl); ok {
			return copyTranslation(cached), nil
		}
	}

	// Stage 1: first-stage retrieval over the candidate pool. Fatal on
	// any failure — every later stage only refines this answer. The
	// question embedding is computed at most once per (generation, NL)
	// pair: a cache hit feeds both retrieval and the re-ranker's
	// similarity feature.
	var qvec vector.Vec
	if useCache {
		qvec, _ = s.embedCache.Get(st.gen, nl)
	}
	var hits []vindex.Hit
	rctx, rcancel := stageCtx(ctx, s.Opts.StageBudget.Retrieval)
	err := runStage(rctx, StageRetrieval, func() error {
		if ferr := inj.Fire(rctx, faults.Retrieval); ferr != nil {
			return ferr
		}
		if qvec == nil {
			qvec = pipeline.Encoder.Encode(nl)
			if useCache {
				s.embedCache.Put(st.gen, nl, qvec)
			}
		}
		var rerr error
		hits, rerr = pipeline.RetrieveVecContext(rctx, qvec, pipeline.K)
		return rerr
	})
	rcancel()
	if err != nil {
		return nil, err
	}

	out := &Translation{Generation: st.gen}
	degrade := func(stage string, err error) {
		out.Degraded = true
		out.Warnings = append(out.Warnings, fmt.Sprintf("%s stage degraded: %v", stage, err))
	}

	// Stage 2: re-ranking. On failure the retrieval order stands. An
	// open circuit breaker skips the stage without paying the failure
	// cost per request.
	var ranked []ltr.Ranked
	br := s.rerankBreaker.Load()
	if br != nil && !br.Allow() {
		ranked = pipeline.FromHits(hits)
		degrade(StageRerank, breaker.ErrOpen)
	} else {
		kctx, kcancel := stageCtx(ctx, s.Opts.StageBudget.Rerank)
		err = runStage(kctx, StageRerank, func() error {
			if ferr := inj.Fire(kctx, faults.Rerank); ferr != nil {
				return ferr
			}
			var rerr error
			ranked, rerr = pipeline.RerankVecContext(kctx, nl, qvec, hits)
			return rerr
		})
		kcancel()
		if br != nil {
			// A client cancellation says nothing about the re-ranker;
			// everything else (errors, panics, timeouts) counts.
			if errors.Is(err, context.Canceled) {
				br.Forgive()
			} else {
				br.Record(err == nil)
			}
		}
		if err != nil {
			ranked = pipeline.FromHits(hits)
			degrade(StageRerank, err)
		}
	}

	// Stage 3: value post-processing (filter by value-implied columns,
	// then instantiate placeholders). On failure the ranked SQL is
	// returned as-is, placeholders still masked.
	var processed []Candidate
	pctx, pcancel := stageCtx(ctx, s.Opts.StageBudget.Postprocess)
	err = runStage(pctx, StagePostprocess, func() error {
		if ferr := inj.Fire(pctx, faults.Postprocess); ferr != nil {
			return ferr
		}
		// Post-processing 1: drop candidates whose dialect lacks a
		// column implied by a literal value in the NL query. If every
		// candidate would be dropped, keep the original ranking.
		filtered := make([]ltr.Ranked, 0, len(ranked))
		for _, r := range ranked {
			if s.Opts.NoDialect || linker.DialectMentionsColumns(nl, r.Dialect) {
				filtered = append(filtered, r)
			}
		}
		if len(filtered) == 0 {
			filtered = ranked
		}
		for _, r := range filtered {
			if cerr := pctx.Err(); cerr != nil {
				return cerr
			}
			// Post-processing 2: instantiate placeholders from the NL.
			sql := linker.FillPlaceholders(r.SQL, nl)
			processed = append(processed, Candidate{SQL: sql, Dialect: r.Dialect, Score: r.Score})
		}
		return nil
	})
	pcancel()
	if err != nil {
		processed = processed[:0]
		for _, r := range ranked {
			processed = append(processed, Candidate{SQL: r.SQL, Dialect: r.Dialect, Score: r.Score})
		}
		degrade(StagePostprocess, err)
	}

	// Stage 4: execution-guided reranking (off by default). The top
	// ExecTopK candidates run against the seeded sample instance and
	// candidates with execution evidence against them are demoted; on
	// any stage failure the pre-execution LTR order stands.
	if s.Opts.ExecGuide && st.guide != nil && len(processed) > 0 {
		var verdicts []execguide.Verdict
		ectx, ecancel := stageCtx(ctx, s.Opts.StageBudget.ExecGuide)
		err = runStage(ectx, StageExecGuide, func() error {
			if ferr := inj.Fire(ectx, faults.ExecGuide); ferr != nil {
				return ferr
			}
			queries := make([]*sqlast.Query, len(processed))
			for i := range processed {
				queries[i] = processed[i].SQL
			}
			var gerr error
			verdicts, gerr = st.guide.Inspect(ectx, queries)
			return gerr
		})
		ecancel()
		if err != nil {
			degrade(StageExecGuide, err)
		} else {
			order := execguide.Reorder(len(processed), verdicts)
			reordered := make([]Candidate, 0, len(processed))
			for _, idx := range order {
				reordered = append(reordered, processed[idx])
			}
			processed = reordered
			out.Verdicts = verdicts
			s.execExecuted.Add(uint64(len(verdicts)))
			for _, v := range verdicts {
				switch {
				case v.Outcome == execguide.Timeout:
					s.execTimeouts.Add(1)
					s.execDemoted.Add(1)
				case v.Outcome == execguide.Error:
					s.execErrors.Add(1)
					s.execDemoted.Add(1)
				case v.Outcome.DemotionClass() > 0:
					s.execDemoted.Add(1)
				}
			}
		}
	}

	out.Ranked = processed
	if len(out.Ranked) > 0 {
		out.Top = &out.Ranked[0]
	}
	// Only clean, fully-processed results are cached: a degraded answer
	// must not outlive the transient failure that produced it.
	if useCache && !out.Degraded {
		s.transCache.Put(st.gen, nl, copyTranslation(out))
	}
	return out, nil
}

// copyTranslation returns a Translation whose slices are private to the
// caller, so the cache's copy and the served copy cannot alias through
// Ranked/Warnings. The Candidates themselves are shared read-only —
// their SQL was already cloned by placeholder filling.
func copyTranslation(t *Translation) *Translation {
	cp := *t
	cp.Ranked = append([]Candidate(nil), t.Ranked...)
	cp.Warnings = append([]string(nil), t.Warnings...)
	cp.Verdicts = append([]execguide.Verdict(nil), t.Verdicts...)
	if len(cp.Ranked) > 0 {
		cp.Top = &cp.Ranked[0]
	}
	return &cp
}

// ExecGuideStats is a point-in-time snapshot of the exec-guide stage's
// counters, all zero while Options.ExecGuide is off.
type ExecGuideStats struct {
	// Executed counts candidates run against the sample instance.
	Executed uint64 `json:"executed"`
	// Demoted counts candidates demoted on execution evidence
	// (errors, timeouts and degenerate results).
	Demoted uint64 `json:"demoted"`
	// Errors and Timeouts break the hard demotions down.
	Errors   uint64 `json:"errors"`
	Timeouts uint64 `json:"timeouts"`
}

// ExecGuideStats reports the exec-guide counters.
func (s *System) ExecGuideStats() ExecGuideStats {
	return ExecGuideStats{
		Executed: s.execExecuted.Load(),
		Demoted:  s.execDemoted.Load(),
		Errors:   s.execErrors.Load(),
		Timeouts: s.execTimeouts.Load(),
	}
}

// RetrievalContains reports whether the gold query appears in the
// first-stage top-k for the NL query; used for Table 9 error
// attribution. It returns false when the gold is not even in the pool.
func (s *System) RetrievalContains(nl string, gold *sqlast.Query, k int) bool {
	st := s.state.Load()
	if !st.trained {
		return false
	}
	goldIdx := st.poolIdx.Find(s.BindGold(gold))
	if goldIdx < 0 {
		return false
	}
	for _, h := range st.pipeline.Retrieve(nl, k) {
		if h.ID == goldIdx {
			return true
		}
	}
	return false
}

// Pool exposes the candidate pool (read-only use).
func (s *System) Pool() []ltr.Candidate {
	pool, _ := s.snapshot()
	return pool
}

// Builder exposes the dialect builder (used by examples and the eval
// harness to show expressions).
func (s *System) Builder() *dialect.Builder { return s.builder }
