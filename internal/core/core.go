// Package core assembles the complete GAR system of the paper: the data
// preparation process (compositional generalization + dialect building),
// the two-stage learning-to-rank translation pipeline, the GAR-J join
// annotation mode, and the value post-processing step. It exposes the
// per-stage hooks the evaluation harness needs for error attribution
// (Table 9): data-preparation misses, retrieval misses and re-ranking
// misses.
package core

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/dialect"
	"repro/internal/embed"
	"repro/internal/engine"
	"repro/internal/faults"
	"repro/internal/generalize"
	"repro/internal/ltr"
	"repro/internal/nn"
	"repro/internal/rerank"
	"repro/internal/schema"
	"repro/internal/sqlast"
	"repro/internal/text"
	"repro/internal/values"
	"repro/internal/vindex"
)

// Options configures a GAR system. The zero value gives the paper's
// defaults scaled down to laptop sizes.
type Options struct {
	// GeneralizeSize caps the generalized query set per database
	// (paper: 20,000). Default 2,000.
	GeneralizeSize int
	// RetrievalK is the first-stage threshold k (paper: 100).
	RetrievalK int
	// Seed drives every random choice in the system.
	Seed int64
	// JoinAnnotations enables GAR-J: the dialect builder uses the
	// database's join annotations.
	JoinAnnotations bool
	// NoDialect is the "w/o Dialect Builder" ablation: the ranking
	// models see raw SQL strings instead of dialect expressions.
	NoDialect bool
	// NoRerank is the "w/o Re-ranking Model" ablation: the retrieval
	// order is final.
	NoRerank bool
	// UseIVF selects the clustered vector index instead of the exact
	// flat index for first-stage retrieval.
	UseIVF bool
	// EncoderEpochs / RerankEpochs control training length.
	EncoderEpochs int
	RerankEpochs  int
	// RerankTrainK is the list length used to train the re-ranker
	// (paper: 100, batch-limited). Default: RetrievalK.
	RerankTrainK int
}

func (o *Options) fill() {
	if o.GeneralizeSize <= 0 {
		o.GeneralizeSize = 2000
	}
	if o.RetrievalK <= 0 {
		o.RetrievalK = 100
	}
	if o.EncoderEpochs <= 0 {
		o.EncoderEpochs = 6
	}
	if o.RerankEpochs <= 0 {
		o.RerankEpochs = 8
	}
	if o.RerankTrainK <= 0 {
		o.RerankTrainK = o.RetrievalK
	}
}

// System is a GAR instance bound to one database.
//
// A System is safe for concurrent Translate/TranslateContext calls;
// Prepare, Train, UseModels and SetContent take the write lock and may
// run concurrently with translations (translations in flight finish
// against the old state).
type System struct {
	DB   *schema.Database
	Opts Options

	// mu guards every field below. Translations take the read lock for
	// their full duration; state mutations take the write lock.
	mu        sync.RWMutex
	builder   *dialect.Builder
	pool      []ltr.Candidate
	poolIdx   *ltr.PoolIndex
	encoder   *embed.Encoder
	pipeline  *ltr.Pipeline
	linker    *values.Linker
	prepStats generalize.Stats
	trained   bool
	inj       *faults.Injector
}

// New creates a GAR system for the database.
func New(db *schema.Database, opts Options) *System {
	opts.fill()
	s := &System{DB: db, Opts: opts}
	if opts.JoinAnnotations {
		s.builder = dialect.NewJ(db)
	} else {
		s.builder = dialect.New(db)
	}
	s.linker = values.NewLinker(db, nil)
	return s
}

// SetContent attaches a populated instance used for value linking in the
// post-processing step (cell-value → column hints).
func (s *System) SetContent(content *engine.Instance) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.linker = values.NewLinker(s.DB, content)
}

// SetFaultInjector installs a fault injector fired at every stage
// boundary of TranslateContext. Pass nil to disable. Intended for the
// fault-injection test harness and resilience soak runs.
func (s *System) SetFaultInjector(inj *faults.Injector) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.inj = inj
}

// Prepare runs the offline data preparation process (Fig. 2 steps 1-2):
// generalizes the sample queries and renders each generalized query as a
// dialect expression, building the candidate pool.
func (s *System) Prepare(samples []*sqlast.Query) {
	// Generalization is the expensive part; run it outside the lock so
	// in-flight translations are not stalled behind a re-Prepare.
	res := generalize.Generalize(s.DB, samples, generalize.Config{
		TargetSize: s.Opts.GeneralizeSize,
		Seed:       s.Opts.Seed,
		Rules:      generalize.AllRules(),
	})
	// A fresh slice (not pool[:0]) so snapshots held by concurrent
	// readers keep seeing the old pool.
	pool := make([]ltr.Candidate, 0, len(res.Queries))
	for _, q := range res.Queries {
		pool = append(pool, ltr.Candidate{SQL: q, Dialect: s.expression(q)})
	}
	idx := ltr.NewPoolIndex(pool)

	s.mu.Lock()
	defer s.mu.Unlock()
	s.prepStats = res.Stats
	s.pool = pool
	s.poolIdx = idx
	s.trained = false
}

// expression renders a candidate for ranking: a dialect expression, or
// the raw SQL string under the w/o-Dialect-Builder ablation.
func (s *System) expression(q *sqlast.Query) string {
	if s.Opts.NoDialect {
		return q.String()
	}
	return s.builder.Express(q)
}

// PrepStats reports the generalization statistics of the last Prepare.
func (s *System) PrepStats() generalize.Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.prepStats
}

// PoolSize returns the candidate pool size.
func (s *System) PoolSize() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.pool)
}

// snapshot returns the current pool and its index under the read lock.
// The returned slice is never mutated after publication (Prepare swaps
// in a fresh one), so callers may use it lock-free.
func (s *System) snapshot() ([]ltr.Candidate, *ltr.PoolIndex) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.pool, s.poolIdx
}

// HasCandidate reports whether the pool contains a query exact-matching
// gold; false means a data-preparation miss.
func (s *System) HasCandidate(gold *sqlast.Query) bool {
	_, idx := s.snapshot()
	return idx != nil && idx.Find(s.BindGold(gold)) >= 0
}

// BindGold resolves a benchmark gold query against this database so its
// canonical form is comparable with the (bound) candidate pool. The
// original query is not modified; an unbindable query is returned as-is.
func (s *System) BindGold(q *sqlast.Query) *sqlast.Query {
	if q == nil {
		return nil
	}
	c := q.Clone()
	if err := s.DB.Bind(c); err != nil {
		return q
	}
	return c
}

// bindExamples rebinds every example's gold query against this database.
func (s *System) bindExamples(examples []ltr.Example) []ltr.Example {
	out := make([]ltr.Example, len(examples))
	for i, ex := range examples {
		out[i] = ltr.Example{NL: ex.NL, Gold: s.BindGold(ex.Gold)}
	}
	return out
}

// Models holds the trained cross-database ranking models: the paper
// fine-tunes one retrieval encoder and one re-ranker per benchmark on
// the train-split databases and applies them to the unseen validation
// databases.
type Models struct {
	Encoder  *embed.Encoder
	Reranker *rerank.Model // nil under the w/o-Re-ranking ablation
}

// TrainingSet couples a prepared per-database System with its (NL, gold)
// training examples.
type TrainingSet struct {
	Sys      *System
	Examples []ltr.Example
}

// TrainModels fits the two-stage ranking models on the training sets,
// following the paper's training phase (Fig. 3): triplets for the
// retrieval encoder over each database's candidate pool, then top-k
// listwise groups for the re-ranker. Every set's System must be
// Prepared.
func TrainModels(sets []TrainingSet, opts Options) (*Models, error) {
	opts.fill()
	// Snapshot each system's pool once up front: training then proceeds
	// lock-free even if a concurrent Prepare swaps a pool underneath.
	pools := make([][]ltr.Candidate, len(sets))
	poolIdxs := make([]*ltr.PoolIndex, len(sets))
	var corpus []string
	for i, set := range sets {
		pools[i], poolIdxs[i] = set.Sys.snapshot()
		if len(pools[i]) == 0 {
			return nil, fmt.Errorf("core: TrainModels with unprepared system for %s", set.Sys.DB.Name)
		}
		sets[i].Examples = set.Sys.bindExamples(set.Examples)
		for _, c := range pools[i] {
			corpus = append(corpus, c.Dialect)
		}
		for _, ex := range sets[i].Examples {
			corpus = append(corpus, ex.NL)
		}
	}

	// Retrieval model.
	encoder := embed.NewEncoder(embed.Config{Seed: opts.Seed})
	encoder.FitIDF(corpus)
	var triplets []embed.Triplet
	for i, set := range sets {
		triplets = append(triplets,
			ltr.BuildTriplets(set.Examples, pools[i], poolIdxs[i], 4, opts.Seed+int64(i)+1)...)
	}
	encoder.Train(triplets, embed.TrainConfig{Epochs: opts.EncoderEpochs})

	m := &Models{Encoder: encoder}
	if opts.NoRerank {
		return m, nil
	}

	// Re-ranking model over per-database retrieval top-k lists.
	x := &rerank.Extractor{IDF: text.NewIDF(corpus), Encoder: encoder}
	model, err := rerank.New(x, opts.Seed+3)
	if err != nil {
		return nil, err
	}
	var lists []rerank.TrainingList
	for i := range sets {
		pipe := &ltr.Pipeline{
			Encoder: encoder,
			Index:   buildIndex(pools[i], encoder, opts),
			Pool:    pools[i],
			PoolIdx: poolIdxs[i],
			K:       opts.RetrievalK,
		}
		lists = append(lists, pipe.BuildLists(sets[i].Examples, opts.RerankTrainK)...)
	}
	model.Train(lists, nn.TrainConfig{Epochs: opts.RerankEpochs, Seed: opts.Seed + 4})
	m.Reranker = model
	return m, nil
}

func buildIndex(pool []ltr.Candidate, encoder *embed.Encoder, opts Options) vindex.Index {
	var index vindex.Index
	if opts.UseIVF {
		nlist := len(pool) / 64
		if nlist < 4 {
			nlist = 4
		}
		index = vindex.NewIVF(nlist, nlist/4+1, opts.Seed+2)
	} else {
		index = vindex.NewFlat()
	}
	for i, c := range pool {
		index.Add(i, encoder.Encode(c.Dialect))
	}
	// Train the coarse quantizer eagerly so the first online query does
	// not pay (or race on) the k-means build.
	if iv, ok := index.(*vindex.IVF); ok {
		iv.Build()
	}
	return index
}

// UseModels deploys pre-trained models on this (prepared) system:
// the candidate pool is embedded and indexed with the trained encoder
// and the pipeline is assembled. This is how a system for an unseen
// validation database comes online.
func (s *System) UseModels(m *Models) error {
	pool, poolIdx := s.snapshot()
	if len(pool) == 0 {
		return fmt.Errorf("core: UseModels before Prepare (empty candidate pool)")
	}
	// Index construction is the slow part; do it before taking the
	// write lock so in-flight translations keep running.
	pipeline := &ltr.Pipeline{
		Encoder:    m.Encoder,
		Index:      buildIndex(pool, m.Encoder, s.Opts),
		Pool:       pool,
		PoolIdx:    poolIdx,
		K:          s.Opts.RetrievalK,
		SkipRerank: s.Opts.NoRerank,
		Reranker:   m.Reranker,
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.encoder = m.Encoder
	s.pipeline = pipeline
	s.trained = true
	return nil
}

// Train is the single-database convenience path (used for GEO, whose
// train and test sets share one database): it trains models on this
// system's own pool and examples, then deploys them.
func (s *System) Train(examples []ltr.Example) error {
	m, err := TrainModels([]TrainingSet{{Sys: s, Examples: examples}}, s.Opts)
	if err != nil {
		return err
	}
	return s.UseModels(m)
}

// Candidate is one ranked translation result after value post-processing.
type Candidate struct {
	SQL     *sqlast.Query
	Dialect string
	Score   float64
}

// Translation is the output of Translate.
type Translation struct {
	// Top is the best candidate (nil when the pool is empty).
	Top *Candidate
	// Ranked is the post-processed top-k list, best first.
	Ranked []Candidate
	// Degraded reports that a non-fatal stage (re-ranking or value
	// post-processing) failed and a documented fallback was used; the
	// result is still usable but of reduced quality.
	Degraded bool
	// Warnings describes each degradation that occurred.
	Warnings []string
}

// Translate runs the full online pipeline on an NL query: two-stage
// ranking followed by value post-processing (candidate filtering by
// value-implied columns, then placeholder instantiation).
//
//garlint:allow ctxpass -- compatibility wrapper over TranslateContext
func (s *System) Translate(nl string) (*Translation, error) {
	return s.TranslateContext(context.Background(), nl)
}

// TranslateContext is Translate with cancellation and stage-level fault
// isolation. Each stage runs inside a recover boundary, so a panic in a
// ranking stage surfaces as a *StageError instead of crashing the
// process, and the pipeline degrades gracefully:
//
//   - retrieval failure (or cancellation before/while retrieving) is
//     fatal: there is nothing to fall back to;
//   - re-ranking failure or timeout falls back to the retrieval-order
//     candidates, flagged Degraded;
//   - value post-processing failure falls back to the ranked candidates
//     with placeholders left masked, flagged Degraded.
//
// TranslateContext is safe to call concurrently.
func (s *System) TranslateContext(ctx context.Context, nl string) (*Translation, error) {
	s.mu.RLock()
	trained, pipeline, linker, inj := s.trained, s.pipeline, s.linker, s.inj
	s.mu.RUnlock()
	if !trained {
		return nil, fmt.Errorf("core: Translate before Train")
	}

	// Stage 1: first-stage retrieval over the candidate pool. Fatal on
	// any failure — every later stage only refines this answer.
	var hits []vindex.Hit
	err := runStage(ctx, StageRetrieval, func() error {
		if ferr := inj.Fire(ctx, faults.Retrieval); ferr != nil {
			return ferr
		}
		var rerr error
		hits, rerr = pipeline.RetrieveContext(ctx, nl, pipeline.K)
		return rerr
	})
	if err != nil {
		return nil, err
	}

	out := &Translation{}
	degrade := func(stage string, err error) {
		out.Degraded = true
		out.Warnings = append(out.Warnings, fmt.Sprintf("%s stage degraded: %v", stage, err))
	}

	// Stage 2: re-ranking. On failure the retrieval order stands.
	var ranked []ltr.Ranked
	err = runStage(ctx, StageRerank, func() error {
		if ferr := inj.Fire(ctx, faults.Rerank); ferr != nil {
			return ferr
		}
		var rerr error
		ranked, rerr = pipeline.RerankContext(ctx, nl, hits)
		return rerr
	})
	if err != nil {
		ranked = pipeline.FromHits(hits)
		degrade(StageRerank, err)
	}

	// Stage 3: value post-processing (filter by value-implied columns,
	// then instantiate placeholders). On failure the ranked SQL is
	// returned as-is, placeholders still masked.
	var processed []Candidate
	err = runStage(ctx, StagePostprocess, func() error {
		if ferr := inj.Fire(ctx, faults.Postprocess); ferr != nil {
			return ferr
		}
		// Post-processing 1: drop candidates whose dialect lacks a
		// column implied by a literal value in the NL query. If every
		// candidate would be dropped, keep the original ranking.
		filtered := make([]ltr.Ranked, 0, len(ranked))
		for _, r := range ranked {
			if s.Opts.NoDialect || linker.DialectMentionsColumns(nl, r.Dialect) {
				filtered = append(filtered, r)
			}
		}
		if len(filtered) == 0 {
			filtered = ranked
		}
		for _, r := range filtered {
			if cerr := ctx.Err(); cerr != nil {
				return cerr
			}
			// Post-processing 2: instantiate placeholders from the NL.
			sql := linker.FillPlaceholders(r.SQL, nl)
			processed = append(processed, Candidate{SQL: sql, Dialect: r.Dialect, Score: r.Score})
		}
		return nil
	})
	if err != nil {
		processed = processed[:0]
		for _, r := range ranked {
			processed = append(processed, Candidate{SQL: r.SQL, Dialect: r.Dialect, Score: r.Score})
		}
		degrade(StagePostprocess, err)
	}

	out.Ranked = processed
	if len(out.Ranked) > 0 {
		out.Top = &out.Ranked[0]
	}
	return out, nil
}

// RetrievalContains reports whether the gold query appears in the
// first-stage top-k for the NL query; used for Table 9 error
// attribution. It returns false when the gold is not even in the pool.
func (s *System) RetrievalContains(nl string, gold *sqlast.Query, k int) bool {
	s.mu.RLock()
	trained, pipeline, poolIdx := s.trained, s.pipeline, s.poolIdx
	s.mu.RUnlock()
	if !trained {
		return false
	}
	goldIdx := poolIdx.Find(s.BindGold(gold))
	if goldIdx < 0 {
		return false
	}
	for _, h := range pipeline.Retrieve(nl, k) {
		if h.ID == goldIdx {
			return true
		}
	}
	return false
}

// Pool exposes the candidate pool (read-only use).
func (s *System) Pool() []ltr.Candidate {
	pool, _ := s.snapshot()
	return pool
}

// Builder exposes the dialect builder (used by examples and the eval
// harness to show expressions).
func (s *System) Builder() *dialect.Builder { return s.builder }
