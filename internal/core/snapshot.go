package core

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/generalize"
	"repro/internal/ltr"
	"repro/internal/sqlparse"
	"repro/internal/vector"
)

// The section names of a serving-snapshot checkpoint, in file order.
// internal/checkpoint carries them as opaque named payloads; the codecs
// here define what the bytes mean.
const (
	// SectionPool is the generalized candidate pool: every candidate's
	// SQL text and dialect expression.
	SectionPool = "pool"
	// SectionVecs holds the encoder embedding of each candidate's
	// dialect, aligned with SectionPool — the vectors the index serves,
	// persisted so a warm start never re-encodes the pool.
	SectionVecs = "vecs"
	// SectionModels is the trained Models stream in the Save envelope
	// (its own magic + length + CRC, nested inside the checkpoint's).
	SectionModels = "models"
	// SectionStats is the generalization statistics of the pool's
	// Prepare, so PrepStats survives a restart.
	SectionStats = "stats"
)

// ErrNotReady is returned by ExportCheckpoint while no translatable
// snapshot is published: there is nothing worth persisting before the
// first completed Train/UseModels/Swap.
var ErrNotReady = errors.New("core: no translatable snapshot to checkpoint")

// poolEntry is the serialized form of one candidate: the SQL text
// (re-parsed and re-bound on restore) and the dialect expression
// (stored, not re-rendered, so a restored pool ranks with byte-identical
// inputs).
type poolEntry struct {
	SQL     string
	Dialect string
}

// snapshotCorrupt tags a semantic section failure with the checkpoint
// package's corruption sentinel, so Store.Recover falls back past it
// exactly as it falls back past a torn envelope.
func snapshotCorrupt(format string, args ...any) error {
	return fmt.Errorf("core: %w: %s", checkpoint.ErrCorrupt, fmt.Sprintf(format, args...))
}

// ExportCheckpoint renders the currently published serving snapshot as
// a checkpoint manifest plus sections: candidate pool, dialect vectors,
// trained models and generalization stats. The manifest's Generation is
// the snapshot's pool generation and Database names the bound database,
// so a restore onto the wrong system is refused. It fails with
// ErrNotReady while no trained snapshot is published.
func (s *System) ExportCheckpoint() (checkpoint.Manifest, []checkpoint.Section, error) {
	st := s.state.Load()
	if !st.trained || st.pipeline == nil {
		return checkpoint.Manifest{}, nil, ErrNotReady
	}

	entries := make([]poolEntry, len(st.pool))
	for i, c := range st.pool {
		entries[i] = poolEntry{SQL: c.SQL.String(), Dialect: c.Dialect}
	}
	vecs := st.pipeline.DialVecs
	if vecs == nil {
		// Defensive: every pipeline built by this package carries its
		// dialect vectors, but re-encoding is always a valid fallback.
		vecs = make([]vector.Vec, len(st.pool))
		for i, c := range st.pool {
			vecs[i] = st.encoder.Encode(c.Dialect)
		}
	}

	var poolBuf, vecsBuf, statsBuf, modelsBuf bytes.Buffer
	if err := gob.NewEncoder(&poolBuf).Encode(entries); err != nil {
		return checkpoint.Manifest{}, nil, fmt.Errorf("core: encoding pool section: %w", err)
	}
	if err := gob.NewEncoder(&vecsBuf).Encode(vecs); err != nil {
		return checkpoint.Manifest{}, nil, fmt.Errorf("core: encoding vecs section: %w", err)
	}
	if err := gob.NewEncoder(&statsBuf).Encode(st.prepStats); err != nil {
		return checkpoint.Manifest{}, nil, fmt.Errorf("core: encoding stats section: %w", err)
	}
	m := &Models{Encoder: st.encoder, Reranker: st.pipeline.Reranker}
	if err := m.Save(&modelsBuf); err != nil {
		return checkpoint.Manifest{}, nil, err
	}

	manifest := checkpoint.Manifest{
		Generation:  st.gen,
		Database:    s.DB.Name,
		CreatedUnix: time.Now().Unix(),
	}
	sections := []checkpoint.Section{
		{Name: SectionPool, Data: poolBuf.Bytes()},
		{Name: SectionVecs, Data: vecsBuf.Bytes()},
		{Name: SectionModels, Data: modelsBuf.Bytes()},
		{Name: SectionStats, Data: statsBuf.Bytes()},
	}
	return manifest, sections, nil
}

// decodeSection gob-decodes one named section into out, containing any
// decoder panic (gob is not hardened against hostile input) and tagging
// every failure as corruption so recovery falls back a generation.
func decodeSection(ck *checkpoint.Checkpoint, name string, out any) (err error) {
	defer func() {
		if rec := recover(); rec != nil {
			err = snapshotCorrupt("section %q does not decode: %v", name, rec)
		}
	}()
	data := ck.Section(name)
	if data == nil {
		return snapshotCorrupt("section %q missing", name)
	}
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(out); err != nil {
		return snapshotCorrupt("section %q does not decode: %v", name, err)
	}
	return nil
}

// RestoreCheckpoint rebuilds the complete serving snapshot from a
// decoded (and envelope-validated) checkpoint and publishes it
// atomically: candidate pool re-parsed and re-bound against this
// system's database, vector index rebuilt from the persisted dialect
// embeddings (no re-encoding), models deployed, pool generation
// restored. After it returns the system is Ready and translates without
// ever running Prepare or Train.
//
// A checkpoint for a different database fails with
// checkpoint.ErrIncompatible; undecodable or internally inconsistent
// sections fail with checkpoint.ErrCorrupt. On any failure the system
// is left exactly as it was — the new state is published only after
// every section has validated.
func (s *System) RestoreCheckpoint(ck *checkpoint.Checkpoint) error {
	if ck == nil {
		return fmt.Errorf("core: restoring a nil checkpoint")
	}
	if ck.Manifest.Database != s.DB.Name {
		return fmt.Errorf("core: %w: checkpoint is for database %q, this system serves %q",
			checkpoint.ErrIncompatible, ck.Manifest.Database, s.DB.Name)
	}

	var entries []poolEntry
	if err := decodeSection(ck, SectionPool, &entries); err != nil {
		return err
	}
	if len(entries) == 0 {
		return snapshotCorrupt("empty candidate pool")
	}
	var vecs []vector.Vec
	if err := decodeSection(ck, SectionVecs, &vecs); err != nil {
		return err
	}
	if len(vecs) != len(entries) {
		return snapshotCorrupt("%d vectors for %d candidates", len(vecs), len(entries))
	}
	var stats generalize.Stats
	if err := decodeSection(ck, SectionStats, &stats); err != nil {
		return err
	}
	modelsData := ck.Section(SectionModels)
	if modelsData == nil {
		return snapshotCorrupt("section %q missing", SectionModels)
	}
	m, err := LoadModels(bytes.NewReader(modelsData))
	if err != nil {
		// The nested model envelope has its own integrity checks; any
		// failure inside a checkpoint that passed its own checksums is
		// still corruption from the restore's point of view.
		return fmt.Errorf("core: %w: models section: %v", checkpoint.ErrCorrupt, err)
	}

	pool := make([]ltr.Candidate, len(entries))
	dim := -1
	for i, e := range entries {
		q, err := sqlparse.Parse(e.SQL)
		if err != nil {
			return snapshotCorrupt("candidate %d does not parse: %v", i, err)
		}
		if err := s.DB.Bind(q); err != nil {
			// The SQL is intact but no longer matches this schema: the
			// checkpoint predates a schema change. Incompatible, not
			// corrupt — but either way recovery must fall back.
			return fmt.Errorf("core: %w: candidate %d does not bind against %s: %v",
				checkpoint.ErrIncompatible, i, s.DB.Name, err)
		}
		pool[i] = ltr.Candidate{SQL: q, Dialect: e.Dialect}
		if dim == -1 {
			dim = len(vecs[i])
		}
		if len(vecs[i]) != dim {
			return snapshotCorrupt("vector %d has dimension %d, want %d", i, len(vecs[i]), dim)
		}
	}

	// Account the restored snapshot against the memory budget before
	// anything is published. A budget too small for the checkpoint is a
	// plain error (not corruption): falling back a generation would not
	// help — older checkpoints are the same size — so the caller should
	// fall through to a cold build, which streams and spills under the
	// same budget instead of materializing the checkpoint whole.
	budget := s.resources.Load().budget
	poolMem, vecMem := budget.Hold(), budget.Hold()
	var poolBytes, vecsBytes int64
	for i := range pool {
		poolBytes += candBytesOf(pool[i])
		vecsBytes += vecBytes(vecs[i])
	}
	if err := poolMem.Grow(poolBytes); err != nil {
		return fmt.Errorf("core: memory budget cannot hold the checkpointed pool: %w", err)
	}
	if err := vecMem.Grow(vecsBytes); err != nil {
		poolMem.Release()
		return fmt.Errorf("core: memory budget cannot hold the checkpointed embeddings: %w", err)
	}

	poolIdx := ltr.NewPoolIndex(pool)
	index := indexFromVecs(vecs, s.Opts)
	pipeline := &ltr.Pipeline{
		Encoder:    m.Encoder,
		Index:      index,
		Pool:       pool,
		PoolIdx:    poolIdx,
		K:          s.Opts.RetrievalK,
		SkipRerank: s.Opts.NoRerank,
		Reranker:   m.Reranker,
		DialVecs:   vecs,
		Costs:      poolCosts(pool),
		Workers:    s.Opts.Workers,
	}

	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	next := *s.state.Load()
	// Generation continuity: on recovery into a fresh system the
	// restored snapshot keeps the generation it was checkpointed at, so
	// health endpoints, Result.Generation and the generation-keyed
	// caches line up across the restart. A system that has already
	// moved past the checkpoint (a rollback) instead advances to a
	// fresh generation: a generation number must never name two
	// different snapshots, or a translation in flight on the outgoing
	// snapshot could repopulate the caches under the restored
	// generation after the purge below.
	if ck.Manifest.Generation > next.gen {
		next.gen = ck.Manifest.Generation
	} else if ck.Manifest.Generation < next.gen {
		next.gen++
	}
	next.pool = pool
	next.poolIdx = poolIdx
	next.prepStats = stats
	// A restored snapshot carries no build degradation: it was complete
	// when checkpointed, and the budget above accepted it whole.
	next.info = buildInfo{}
	next.encoder = m.Encoder
	next.pipeline = pipeline
	next.trained = true
	s.adoptSnapMem(poolMem, vecMem)
	s.publish(&next)
	s.purgeCaches()
	return nil
}
