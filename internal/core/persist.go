package core

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc64"
	"io"
	"os"
	"path/filepath"

	"repro/internal/embed"
	"repro/internal/nn"
	"repro/internal/rerank"
	"repro/internal/text"
)

// ErrCorruptModels is wrapped by every integrity failure of LoadModels
// — a torn write, a truncated stream, a bit flip — so callers can
// distinguish corruption (restore from a good copy) from an ordinary
// I/O error with errors.Is.
var ErrCorruptModels = errors.New("model stream corrupt")

// The model envelope: an 8-byte magic, a big-endian payload length,
// the gob payload, and a trailing CRC-64/ECMA of the payload. The
// trailing checksum makes torn writes detectable: a crash mid-write
// leaves a file whose checksum (or length) cannot match.
const modelsMagic = "GARMDL1\n"

var modelsCRC = crc64.MakeTable(crc64.ECMA)

// envelopeOverhead is the non-payload size: magic + length + checksum.
const envelopeOverhead = len(modelsMagic) + 8 + 8

// modelsState is the serialized form of Models. The re-ranker is split
// into its network and its extractor's IDF statistics; the extractor's
// encoder reference is re-attached to the (also serialized) retrieval
// encoder on load.
type modelsState struct {
	Encoder   *embed.Encoder
	HasRerank bool
	RerankNet *nn.MLP
	RerankIDF *text.IDF
}

// Save writes the trained models to w in the checksummed envelope
// format. Saved models can be reloaded with LoadModels and deployed on
// any prepared System, skipping training entirely.
func (m *Models) Save(w io.Writer) error {
	var payload bytes.Buffer
	st := modelsState{Encoder: m.Encoder}
	if m.Reranker != nil {
		st.HasRerank = true
		st.RerankNet = m.Reranker.Net
		st.RerankIDF = m.Reranker.X.IDF
	}
	if err := gob.NewEncoder(&payload).Encode(&st); err != nil {
		return fmt.Errorf("core: saving models: %w", err)
	}

	var out bytes.Buffer
	out.Grow(payload.Len() + envelopeOverhead)
	out.WriteString(modelsMagic)
	var n [8]byte
	binary.BigEndian.PutUint64(n[:], uint64(payload.Len()))
	out.Write(n[:])
	out.Write(payload.Bytes())
	binary.BigEndian.PutUint64(n[:], crc64.Checksum(payload.Bytes(), modelsCRC))
	out.Write(n[:])
	if _, err := w.Write(out.Bytes()); err != nil {
		return fmt.Errorf("core: saving models: %w", err)
	}
	return nil
}

// SaveFile writes the models to path crash-safely: the envelope goes
// to a temporary file in the same directory, is fsynced, and is
// renamed over path, so a crash at any point leaves either the old
// complete file or the new complete file — never a torn one. (A torn
// write that somehow survives is still caught by LoadModels via the
// trailing checksum.)
func (m *Models) SaveFile(path string) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".gar-models-*.tmp")
	if err != nil {
		return fmt.Errorf("core: saving models: %w", err)
	}
	defer func() {
		if tmp != nil {
			discardTemp(tmp)
		}
	}()
	if err := m.Save(tmp); err != nil {
		return err
	}
	if err := tmp.Sync(); err != nil {
		return fmt.Errorf("core: saving models: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("core: saving models: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("core: saving models: %w", err)
	}
	tmp = nil // renamed away; nothing to clean up
	// Fsync the directory so the rename itself survives a crash.
	syncDir(dir)
	return nil
}

// discardTemp closes and removes a temp file after a failure that is
// already being reported.
//
//garlint:allow errlost -- best-effort cleanup on a path that is already failing; the original error is the one to surface
func discardTemp(f *os.File) {
	_ = f.Close()
	_ = os.Remove(f.Name())
}

// syncDir fsyncs a directory so a completed rename survives a crash.
//
//garlint:allow errlost -- durability hint after the rename has already landed; there is nothing left to unwind
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		_ = d.Close()
	}
}

// verifyEnvelope checks the magic, length and trailing checksum and
// returns the gob payload. Every failure wraps ErrCorruptModels.
func verifyEnvelope(data []byte) ([]byte, error) {
	corrupt := func(reason string) error {
		return fmt.Errorf("core: loading models: %w: %s", ErrCorruptModels, reason)
	}
	if len(data) < envelopeOverhead {
		return nil, corrupt(fmt.Sprintf("stream too short (%d bytes): torn or truncated write", len(data)))
	}
	if string(data[:len(modelsMagic)]) != modelsMagic {
		return nil, corrupt("missing model header")
	}
	body := data[len(modelsMagic):]
	want := binary.BigEndian.Uint64(body[:8])
	if got := uint64(len(body) - 16); got != want {
		return nil, corrupt(fmt.Sprintf("payload length %d does not match header %d: torn write", got, want))
	}
	payload := body[8 : 8+want]
	sum := binary.BigEndian.Uint64(body[8+want:])
	if crc64.Checksum(payload, modelsCRC) != sum {
		return nil, corrupt("checksum mismatch")
	}
	return payload, nil
}

// LoadModels reads models previously written by Save, verifying the
// envelope checksum first: a torn, truncated or bit-flipped stream is
// rejected with an error wrapping ErrCorruptModels before any decoding
// happens. Decoding never panics (a decoder panic on malformed input
// is recovered into an error).
func LoadModels(r io.Reader) (m *Models, err error) {
	defer func() {
		if rec := recover(); rec != nil {
			m, err = nil, fmt.Errorf("core: loading models: malformed model data: %v", rec)
		}
	}()
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("core: loading models: %w", err)
	}
	payload, err := verifyEnvelope(data)
	if err != nil {
		return nil, err
	}
	var st modelsState
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&st); err != nil {
		return nil, fmt.Errorf("core: loading models: %w", err)
	}
	if st.Encoder == nil {
		return nil, fmt.Errorf("core: loaded models have no encoder")
	}
	m = &Models{Encoder: st.Encoder}
	if st.HasRerank {
		if st.RerankNet == nil {
			return nil, fmt.Errorf("core: loaded models have a re-ranker without a network")
		}
		m.Reranker = &rerank.Model{
			X:   &rerank.Extractor{IDF: st.RerankIDF, Encoder: st.Encoder},
			Net: st.RerankNet,
		}
	}
	return m, nil
}
