package core

import (
	"encoding/gob"
	"fmt"
	"io"

	"repro/internal/embed"
	"repro/internal/nn"
	"repro/internal/rerank"
	"repro/internal/text"
)

// modelsState is the serialized form of Models. The re-ranker is split
// into its network and its extractor's IDF statistics; the extractor's
// encoder reference is re-attached to the (also serialized) retrieval
// encoder on load.
type modelsState struct {
	Encoder   *embed.Encoder
	HasRerank bool
	RerankNet *nn.MLP
	RerankIDF *text.IDF
}

// Save writes the trained models to w in gob format. Saved models can
// be reloaded with LoadModels and deployed on any prepared System,
// skipping training entirely.
func (m *Models) Save(w io.Writer) error {
	st := modelsState{Encoder: m.Encoder}
	if m.Reranker != nil {
		st.HasRerank = true
		st.RerankNet = m.Reranker.Net
		st.RerankIDF = m.Reranker.X.IDF
	}
	if err := gob.NewEncoder(w).Encode(&st); err != nil {
		return fmt.Errorf("core: saving models: %w", err)
	}
	return nil
}

// LoadModels reads models previously written by Save. A truncated or
// corrupted stream returns a descriptive error; decoding never panics
// (a decoder panic on malformed input is recovered into an error).
func LoadModels(r io.Reader) (m *Models, err error) {
	defer func() {
		if rec := recover(); rec != nil {
			m, err = nil, fmt.Errorf("core: loading models: malformed model data: %v", rec)
		}
	}()
	var st modelsState
	if err := gob.NewDecoder(r).Decode(&st); err != nil {
		return nil, fmt.Errorf("core: loading models: %w", err)
	}
	if st.Encoder == nil {
		return nil, fmt.Errorf("core: loaded models have no encoder")
	}
	m = &Models{Encoder: st.Encoder}
	if st.HasRerank {
		if st.RerankNet == nil {
			return nil, fmt.Errorf("core: loaded models have a re-ranker without a network")
		}
		m.Reranker = &rerank.Model{
			X:   &rerank.Extractor{IDF: st.RerankIDF, Encoder: st.Encoder},
			Net: st.RerankNet,
		}
	}
	return m, nil
}
