package core_test

import (
	"strconv"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/schema/schematest"
)

// renderTranslation canonicalizes a Translation for byte-level
// comparison: every ranked candidate with its printed SQL, dialect and
// the exact bit pattern of its score.
func renderTranslation(tr *core.Translation) string {
	var sb strings.Builder
	sb.WriteString("gen=" + strconv.FormatUint(tr.Generation, 10))
	sb.WriteString(" degraded=" + strconv.FormatBool(tr.Degraded))
	for _, w := range tr.Warnings {
		sb.WriteString(" warn=" + w)
	}
	for _, c := range tr.Ranked {
		sb.WriteString("\n")
		sb.WriteString(strconv.FormatFloat(c.Score, 'b', -1, 64))
		sb.WriteString("\t")
		sb.WriteString(c.Dialect)
		sb.WriteString("\t")
		sb.WriteString(c.SQL.String())
	}
	// Execution evidence is part of the contract too: the same demotion
	// decisions must fall out regardless of worker count.
	for _, v := range tr.Verdicts {
		sb.WriteString("\nverdict=")
		sb.WriteString(strconv.Itoa(v.Index))
		sb.WriteString("\t")
		sb.WriteString(v.Outcome.String())
		sb.WriteString("\trows=")
		sb.WriteString(strconv.Itoa(v.Rows))
		sb.WriteString("\t")
		sb.WriteString(v.Detail)
	}
	return sb.String()
}

// TestParallelTranslateDeterminism pins the contract of the batched
// second stage: with a fixed seed, a system scoring candidates on one
// worker and a system fanning out across eight produce byte-identical
// translations — same order, same bit-exact scores — including when the
// parallel system is hammered from many goroutines at once. Runs in the
// stress target under the race detector.
func TestParallelTranslateDeterminism(t *testing.T) {
	opts := core.Options{
		GeneralizeSize: 300,
		RetrievalK:     10,
		EncoderEpochs:  12,
		RerankEpochs:   40,
		Seed:           42,
		NoCache:        true, // every call must take the live scoring path
	}
	seqOpts, parOpts := opts, opts
	seqOpts.Workers = 1
	parOpts.Workers = 8

	seq := core.New(schematest.Employee(), seqOpts)
	seq.Prepare(employeeSamples())
	if err := seq.Train(employeeExamples()); err != nil {
		t.Fatal(err)
	}
	par := core.New(schematest.Employee(), parOpts)
	par.Prepare(employeeSamples())
	if err := par.Train(employeeExamples()); err != nil {
		t.Fatal(err)
	}

	questions := []string{
		"find the name of the employee who got the highest one time bonus",
		"which employees are older than 30",
		"how many employees live in each city",
		"what is the average bonus",
		"which shop has the most products",
	}

	want := make(map[string]string, len(questions))
	for _, q := range questions {
		tr, err := seq.Translate(q)
		if err != nil {
			t.Fatalf("sequential translate %q: %v", q, err)
		}
		want[q] = renderTranslation(tr)
	}

	// Single-shot equality first: a clean divergence report beats a
	// concurrent one.
	for _, q := range questions {
		tr, err := par.Translate(q)
		if err != nil {
			t.Fatalf("parallel translate %q: %v", q, err)
		}
		if got := renderTranslation(tr); got != want[q] {
			t.Fatalf("parallel output diverged for %q:\n--- sequential ---\n%s\n--- parallel ---\n%s", q, want[q], got)
		}
	}

	// Then under contention: every concurrent call must still match the
	// sequential reference exactly.
	const goroutines, rounds = 8, 5
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				q := questions[(g+r)%len(questions)]
				tr, err := par.Translate(q)
				if err != nil {
					errs <- err
					return
				}
				if got := renderTranslation(tr); got != want[q] {
					errs <- errDiverged{q: q}
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestParallelTranslateDeterminismExecGuided extends the determinism
// contract to the execution-guided fourth stage: with ExecGuide on, the
// one-worker and eight-worker systems must produce byte-identical
// translations including the per-candidate verdicts and the reordering
// they imply — executing candidates against the seeded sample instance
// must not introduce any scheduling-dependent behavior.
func TestParallelTranslateDeterminismExecGuided(t *testing.T) {
	opts := core.Options{
		GeneralizeSize: 300,
		RetrievalK:     10,
		EncoderEpochs:  12,
		RerankEpochs:   40,
		Seed:           42,
		NoCache:        true,
		ExecGuide:      true,
	}
	seqOpts, parOpts := opts, opts
	seqOpts.Workers = 1
	parOpts.Workers = 8

	seq := core.New(schematest.Employee(), seqOpts)
	seq.Prepare(employeeSamples())
	if err := seq.Train(employeeExamples()); err != nil {
		t.Fatal(err)
	}
	par := core.New(schematest.Employee(), parOpts)
	par.Prepare(employeeSamples())
	if err := par.Train(employeeExamples()); err != nil {
		t.Fatal(err)
	}

	questions := []string{
		"find the name of the employee who got the highest one time bonus",
		"which employees are older than 30",
		"how many employees live in each city",
		"what is the average bonus",
		"which shop has the most products",
	}

	want := make(map[string]string, len(questions))
	for _, q := range questions {
		tr, err := seq.Translate(q)
		if err != nil {
			t.Fatalf("sequential translate %q: %v", q, err)
		}
		if len(tr.Verdicts) == 0 {
			t.Fatalf("exec-guided sequential translate %q produced no verdicts", q)
		}
		want[q] = renderTranslation(tr)
	}

	for _, q := range questions {
		tr, err := par.Translate(q)
		if err != nil {
			t.Fatalf("parallel translate %q: %v", q, err)
		}
		if got := renderTranslation(tr); got != want[q] {
			t.Fatalf("exec-guided parallel output diverged for %q:\n--- sequential ---\n%s\n--- parallel ---\n%s", q, want[q], got)
		}
	}

	const goroutines, rounds = 8, 3
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				q := questions[(g+r)%len(questions)]
				tr, err := par.Translate(q)
				if err != nil {
					errs <- err
					return
				}
				if got := renderTranslation(tr); got != want[q] {
					errs <- errDiverged{q: q}
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

type errDiverged struct{ q string }

func (e errDiverged) Error() string {
	return "concurrent parallel translate diverged from sequential reference for " + strconv.Quote(e.q)
}
