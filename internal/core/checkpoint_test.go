package core_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/schema/schematest"
)

// restoreTarget builds a fresh, never-prepared system with the same
// options trainedSystem uses, the warm-start shape: schema from config,
// state from the checkpoint.
func restoreTarget() *core.System {
	return core.New(schematest.Employee(), core.Options{
		GeneralizeSize: 300, RetrievalK: 10,
		EncoderEpochs: 12, RerankEpochs: 40, Seed: 42,
	})
}

var checkpointQuestions = []string{
	"who is the oldest employee",
	"how many employees are there",
	"what is the average bonus",
	"which employees are older than 30",
}

// TestCheckpointRoundTrip is the core warm-start contract: export the
// serving snapshot, decode it back, restore into a fresh system that
// never ran Prepare or Train, and get byte-identical translations at
// the same generation.
func TestCheckpointRoundTrip(t *testing.T) {
	sys := trainedSystem(t, core.Options{})
	m, sections, err := sys.ExportCheckpoint()
	if err != nil {
		t.Fatal(err)
	}
	if m.Database != sys.DB.Name || m.Generation != sys.Generation() {
		t.Fatalf("manifest = %+v, want db %s gen %d", m, sys.DB.Name, sys.Generation())
	}
	data, err := checkpoint.Encode(m, sections)
	if err != nil {
		t.Fatal(err)
	}
	ck, err := checkpoint.Decode(data)
	if err != nil {
		t.Fatal(err)
	}

	fresh := restoreTarget()
	if fresh.Ready() || fresh.PoolSize() != 0 {
		t.Fatal("restore target is not pristine")
	}
	if err := fresh.RestoreCheckpoint(ck); err != nil {
		t.Fatal(err)
	}
	if !fresh.Ready() {
		t.Fatal("restored system is not Ready")
	}
	if fresh.Generation() != sys.Generation() {
		t.Fatalf("restored generation %d, want %d", fresh.Generation(), sys.Generation())
	}
	if fresh.PoolSize() != sys.PoolSize() {
		t.Fatalf("restored pool %d, want %d", fresh.PoolSize(), sys.PoolSize())
	}
	if fresh.PrepStats() != sys.PrepStats() {
		t.Fatalf("PrepStats did not survive: %+v vs %+v", fresh.PrepStats(), sys.PrepStats())
	}

	want := sys.PoolDialects()
	got := fresh.PoolDialects()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("dialect %d differs after restore: %q vs %q", i, got[i], want[i])
		}
	}

	for _, q := range checkpointQuestions {
		a, err := sys.Translate(q)
		if err != nil {
			t.Fatal(err)
		}
		b, err := fresh.Translate(q)
		if err != nil {
			t.Fatal(err)
		}
		if a.Top.SQL.String() != b.Top.SQL.String() {
			t.Fatalf("%q: restored top %q, want %q", q, b.Top.SQL, a.Top.SQL)
		}
		if len(a.Ranked) != len(b.Ranked) {
			t.Fatalf("%q: ranked lengths differ: %d vs %d", q, len(b.Ranked), len(a.Ranked))
		}
		for i := range a.Ranked {
			if a.Ranked[i].Score != b.Ranked[i].Score || a.Ranked[i].Dialect != b.Ranked[i].Dialect {
				t.Fatalf("%q: rank %d differs: %+v vs %+v", q, i, b.Ranked[i], a.Ranked[i])
			}
		}
		if b.Generation != fresh.Generation() {
			t.Fatalf("%q: translation generation %d, want %d", q, b.Generation, fresh.Generation())
		}
	}
}

// TestCheckpointExportNotReady: nothing durable exists before training.
func TestCheckpointExportNotReady(t *testing.T) {
	sys := restoreTarget()
	if _, _, err := sys.ExportCheckpoint(); !errors.Is(err, core.ErrNotReady) {
		t.Fatalf("export before train: %v, want ErrNotReady", err)
	}
	sys.Prepare(employeeSamples())
	if _, _, err := sys.ExportCheckpoint(); !errors.Is(err, core.ErrNotReady) {
		t.Fatalf("export after bare Prepare: %v, want ErrNotReady", err)
	}
}

// TestCheckpointRestoreWrongDatabase: a checkpoint for another database
// is refused as incompatible and the system is untouched.
func TestCheckpointRestoreWrongDatabase(t *testing.T) {
	sys := trainedSystem(t, core.Options{})
	m, sections, err := sys.ExportCheckpoint()
	if err != nil {
		t.Fatal(err)
	}
	data, _ := checkpoint.Encode(m, sections)
	ck, _ := checkpoint.Decode(data)

	other := core.New(schematest.Flights(), core.Options{RetrievalK: 10, Seed: 42})
	err = other.RestoreCheckpoint(ck)
	if !errors.Is(err, checkpoint.ErrIncompatible) {
		t.Fatalf("restore onto flights: %v, want ErrIncompatible", err)
	}
	if other.Ready() || other.PoolSize() != 0 {
		t.Fatal("failed restore mutated the system")
	}
}

// TestCheckpointRestoreDamagedSections: every single-section mutilation
// of a valid checkpoint is rejected as corrupt, never panics, and never
// publishes a half-restored state.
func TestCheckpointRestoreDamagedSections(t *testing.T) {
	sys := trainedSystem(t, core.Options{})
	m, sections, err := sys.ExportCheckpoint()
	if err != nil {
		t.Fatal(err)
	}

	names := []string{core.SectionPool, core.SectionVecs, core.SectionModels, core.SectionStats}
	mutations := map[string]func([]checkpoint.Section, int) []checkpoint.Section{
		"missing": func(ss []checkpoint.Section, i int) []checkpoint.Section {
			return append(append([]checkpoint.Section(nil), ss[:i]...), ss[i+1:]...)
		},
		"truncated": func(ss []checkpoint.Section, i int) []checkpoint.Section {
			out := append([]checkpoint.Section(nil), ss...)
			out[i] = checkpoint.Section{Name: out[i].Name, Data: out[i].Data[:len(out[i].Data)/2]}
			return out
		},
		"garbage": func(ss []checkpoint.Section, i int) []checkpoint.Section {
			out := append([]checkpoint.Section(nil), ss...)
			out[i] = checkpoint.Section{Name: out[i].Name, Data: []byte("not a gob stream at all")}
			return out
		},
	}
	for mutName, mutate := range mutations {
		for i, name := range names {
			t.Run(mutName+"-"+name, func(t *testing.T) {
				damaged := mutate(sections, i)
				// Re-encode: the envelope is self-consistent, so only the
				// semantic layer can catch the damage.
				data, err := checkpoint.Encode(m, damaged)
				if err != nil {
					t.Fatal(err)
				}
				ck, err := checkpoint.Decode(data)
				if err != nil {
					t.Fatal(err)
				}
				fresh := restoreTarget()
				rerr := fresh.RestoreCheckpoint(ck)
				if rerr == nil {
					t.Fatal("damaged checkpoint restored cleanly")
				}
				if !errors.Is(rerr, checkpoint.ErrCorrupt) {
					t.Fatalf("damage not typed as corruption: %v", rerr)
				}
				if fresh.Ready() {
					t.Fatal("failed restore published a state")
				}
			})
		}
	}
}

// TestCheckpointRecoverySystemMatrix drives Store.Recover with
// RestoreCheckpoint as the acceptance check across a directory holding
// a valid old generation plus assorted damaged newer ones: recovery
// must land on the newest fully-valid generation, never panic, and
// leave the system serving exactly that state.
func TestCheckpointRecoverySystemMatrix(t *testing.T) {
	sys := trainedSystem(t, core.Options{})
	m, sections, err := sys.ExportCheckpoint()
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	st, err := checkpoint.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	// gen 1: fully valid.
	m1 := m
	m1.Generation = 1
	if err := st.Write(m1, sections); err != nil {
		t.Fatal(err)
	}
	// gen 2: bit-flipped on disk (write "succeeds", checksum must catch).
	inj := faults.NewInjector(7)
	inj.Inject(faults.FSWrite, faults.Plan{Kind: faults.KindBitFlip, Offset: 12345})
	st.SetFaultInjector(inj)
	m2 := m
	m2.Generation = 2
	if err := st.Write(m2, sections); err != nil {
		t.Fatal(err)
	}
	// gen 3: torn mid-write (short write fails the writer; no file may
	// appear under the final name).
	inj2 := faults.NewInjector(7)
	inj2.Inject(faults.FSWrite, faults.Plan{Kind: faults.KindShortWrite, Bytes: 100})
	st.SetFaultInjector(inj2)
	m3 := m
	m3.Generation = 3
	if err := st.Write(m3, sections); err == nil {
		t.Fatal("short write reported success")
	}
	// gen 4: valid envelope, models section missing — semantic damage
	// only RestoreCheckpoint can detect.
	st.SetFaultInjector(nil)
	var noModels []checkpoint.Section
	for _, s := range sections {
		if s.Name != core.SectionModels {
			noModels = append(noModels, s)
		}
	}
	m4 := m
	m4.Generation = 4
	if err := st.Write(m4, noModels); err != nil {
		t.Fatal(err)
	}

	fresh := restoreTarget()
	ck, skipped, err := st.Recover(fresh.RestoreCheckpoint)
	if err != nil {
		t.Fatal(err)
	}
	if ck == nil {
		t.Fatalf("nothing recovered; skipped: %v", skipped)
	}
	if ck.Manifest.Generation != 1 {
		t.Fatalf("recovered generation %d, want 1 (newest fully-valid)", ck.Manifest.Generation)
	}
	// gen 4 (missing section) and gen 2 (bit flip) must both have been
	// proven invalid; gen 3 never completed its rename.
	if len(skipped) != 2 {
		t.Fatalf("skipped %d files, want 2: %v", len(skipped), skipped)
	}
	for _, sk := range skipped {
		if !errors.Is(sk.Err, checkpoint.ErrCorrupt) {
			t.Fatalf("skip reason not corruption: %v", sk.Err)
		}
	}
	if !fresh.Ready() || fresh.Generation() != 1 {
		t.Fatalf("system not serving the recovered state (ready=%v gen=%d)", fresh.Ready(), fresh.Generation())
	}
	if _, err := fresh.Translate("who is the oldest employee"); err != nil {
		t.Fatal(err)
	}

	// All-invalid directory: recovery reports clean empty state and the
	// target system stays pristine.
	empty := t.TempDir()
	st2, _ := checkpoint.Open(empty)
	if err := st2.Write(m4, noModels); err != nil {
		t.Fatal(err)
	}
	pristine := restoreTarget()
	ck2, skipped2, err := st2.Recover(pristine.RestoreCheckpoint)
	if err != nil || ck2 != nil {
		t.Fatalf("all-invalid directory: ck=%v err=%v", ck2, err)
	}
	if len(skipped2) != 1 || pristine.Ready() {
		t.Fatalf("clean-empty-state contract violated: skipped=%v ready=%v", skipped2, pristine.Ready())
	}
}

// waitFor polls cond for up to 5 seconds.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestCheckpointerWritesOnPublish: the background checkpointer hooks
// the publish path, coalesces the Prepare+Train burst into one write,
// and the written file restores.
func TestCheckpointerWritesOnPublish(t *testing.T) {
	dir := t.TempDir()
	st, err := checkpoint.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	sys := restoreTarget()
	c := core.NewCheckpointer(sys, st, core.CheckpointerConfig{
		Keep: 2, Coalesce: 20 * time.Millisecond, Backoff: 10 * time.Millisecond,
	})
	c.Start()
	defer c.Stop()

	// Prepare then Train: two publications inside one coalesce window.
	sys.Prepare(employeeSamples())
	if err := sys.Train(employeeExamples()); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "first background write", func() bool { return c.Stats().Writes >= 1 })

	stats := c.Stats()
	if stats.LastGeneration != sys.Generation() {
		t.Fatalf("checkpointed generation %d, want %d", stats.LastGeneration, sys.Generation())
	}
	if stats.Pending {
		t.Fatal("write completed but still pending")
	}
	ck, skipped, err := st.Recover(nil)
	if err != nil || ck == nil {
		t.Fatalf("recover: ck=%v skipped=%v err=%v", ck, skipped, err)
	}
	fresh := restoreTarget()
	if err := fresh.RestoreCheckpoint(ck); err != nil {
		t.Fatal(err)
	}
	if !fresh.Ready() {
		t.Fatal("background checkpoint does not restore")
	}
}

// TestCheckpointerRetriesWithBackoff: injected fsync failures are
// retried until the write lands; the counters record every failure.
func TestCheckpointerRetriesWithBackoff(t *testing.T) {
	dir := t.TempDir()
	st, err := checkpoint.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	inj := faults.NewInjector(3)
	inj.Inject(faults.FSSync, faults.Plan{Kind: faults.KindError, Times: 2})
	st.SetFaultInjector(inj)

	sys := trainedSystem(t, core.Options{})
	c := core.NewCheckpointer(sys, st, core.CheckpointerConfig{
		Keep: 2, Coalesce: time.Millisecond, Backoff: time.Millisecond, MaxBackoff: 5 * time.Millisecond,
	})
	c.Start()
	defer c.Stop()
	c.Notify()

	waitFor(t, "write to land after retries", func() bool { return c.Stats().Writes >= 1 })
	stats := c.Stats()
	if stats.Failures != 2 {
		t.Fatalf("failures = %d, want 2", stats.Failures)
	}
	if stats.LastError != "" {
		t.Fatalf("LastError not cleared after success: %q", stats.LastError)
	}
	if got := inj.Fired(faults.FSSync); got != 2 {
		t.Fatalf("injector fired %d times, want 2", got)
	}
}

// TestCheckpointerFlushAndRetention: Flush persists synchronously, and
// repeated swaps prune the directory down to Keep generations.
func TestCheckpointerFlushAndRetention(t *testing.T) {
	dir := t.TempDir()
	st, err := checkpoint.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	sys := trainedSystem(t, core.Options{})
	models, err := core.TrainModels(
		[]core.TrainingSet{{Sys: sys, Examples: employeeExamples()}}, sys.Opts)
	if err != nil {
		t.Fatal(err)
	}
	c := core.NewCheckpointer(sys, st, core.CheckpointerConfig{Keep: 2, Backoff: time.Millisecond})

	// Not started: Flush alone must persist the current state.
	if err := c.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	entries, err := st.List()
	if err != nil || len(entries) != 1 {
		t.Fatalf("after flush: %d entries (%v)", len(entries), err)
	}

	// Swap a few generations through the synchronous path and verify
	// retention holds at Keep.
	for i := 0; i < 3; i++ {
		if _, err := sys.Swap(employeeSamples(), models); err != nil {
			t.Fatal(err)
		}
		if err := c.Flush(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	entries, err = st.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("retention kept %d generations, want 2", len(entries))
	}
	if entries[0].Generation != sys.Generation() {
		t.Fatalf("newest on disk is %d, want %d", entries[0].Generation, sys.Generation())
	}
	if c.Stats().Pruned == 0 {
		t.Fatal("prune counter never moved")
	}

	// Flushing an unready system is a clean no-op.
	c2 := core.NewCheckpointer(restoreTarget(), st, core.CheckpointerConfig{})
	if err := c2.Flush(context.Background()); err != nil {
		t.Fatalf("flush of unready system: %v", err)
	}
}

// TestCheckpointRestoredSystemKeepsEvolving: a warm-started system is a
// full citizen — swaps bump its restored generation and the next export
// captures the new state.
func TestCheckpointRestoredSystemKeepsEvolving(t *testing.T) {
	sys := trainedSystem(t, core.Options{})
	m, sections, err := sys.ExportCheckpoint()
	if err != nil {
		t.Fatal(err)
	}
	data, _ := checkpoint.Encode(m, sections)
	ck, _ := checkpoint.Decode(data)

	fresh := restoreTarget()
	if err := fresh.RestoreCheckpoint(ck); err != nil {
		t.Fatal(err)
	}
	restoredGen := fresh.Generation()

	models, err := core.TrainModels(
		[]core.TrainingSet{{Sys: fresh, Examples: employeeExamples()}}, fresh.Opts)
	if err != nil {
		t.Fatal(err)
	}
	gen, err := fresh.Swap(employeeSamples(), models)
	if err != nil {
		t.Fatal(err)
	}
	if gen != restoredGen+1 {
		t.Fatalf("post-restore swap produced generation %d, want %d", gen, restoredGen+1)
	}
	m2, _, err := fresh.ExportCheckpoint()
	if err != nil {
		t.Fatal(err)
	}
	if m2.Generation != gen {
		t.Fatalf("re-export generation %d, want %d", m2.Generation, gen)
	}
}
