package core_test

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/faults"
)

// TestFaultMatrix exercises {error, panic, deadline-exceeded} at each of
// the three stage boundaries {retrieval, rerank, postprocess} and
// asserts the documented degradation contract: no panic ever escapes,
// retrieval failures are fatal, re-ranking failures fall back to
// retrieval order, and post-processing failures fall back to masked
// SQL. Run under -race this also checks the recover boundaries are
// data-race free.
func TestFaultMatrix(t *testing.T) {
	sys := trainedSystem(t, core.Options{})
	const q = "which employees are older than 30"

	clean, err := sys.Translate(q)
	if err != nil {
		t.Fatal(err)
	}
	if clean.Degraded || len(clean.Warnings) != 0 {
		t.Fatalf("clean translation degraded: %+v", clean)
	}
	if !strings.Contains(clean.Top.SQL.String(), "30") {
		t.Fatalf("clean translation did not fill the literal: %s", clean.Top.SQL)
	}
	cleanSet := sqlSet(clean.Ranked)

	stages := []faults.Stage{faults.Retrieval, faults.Rerank, faults.Postprocess}
	kinds := []string{"error", "panic", "deadline"}
	injectedErr := errors.New("injected failure")

	for _, stage := range stages {
		for _, kind := range kinds {
			t.Run(fmt.Sprintf("%s/%s", stage, kind), func(t *testing.T) {
				inj := faults.NewInjector(1)
				ctx := context.Background()
				switch kind {
				case "error":
					inj.Fail(stage, injectedErr)
				case "panic":
					inj.Panic(stage, "kaboom")
				case "deadline":
					inj.Delay(stage, time.Hour)
					var cancel context.CancelFunc
					ctx, cancel = context.WithTimeout(ctx, 30*time.Millisecond)
					defer cancel()
				}
				sys.SetFaultInjector(inj)
				defer sys.SetFaultInjector(nil)

				tr, err := sys.TranslateContext(ctx, q)
				if inj.Fired(stage) == 0 {
					t.Fatal("fault plan never fired")
				}

				if stage == faults.Retrieval {
					// Retrieval is the only fatal stage.
					if err == nil {
						t.Fatal("retrieval failure was not fatal")
					}
					se, ok := core.AsStageError(err)
					if !ok || se.Stage != core.StageRetrieval {
						t.Fatalf("error is not a retrieval StageError: %v", err)
					}
					switch kind {
					case "error":
						if !errors.Is(err, injectedErr) {
							t.Fatalf("injected error not wrapped: %v", err)
						}
					case "panic":
						var pe *core.PanicError
						if !errors.As(err, &pe) {
							t.Fatalf("recovered panic not surfaced as PanicError: %v", err)
						}
					case "deadline":
						if !errors.Is(err, context.DeadlineExceeded) {
							t.Fatalf("deadline not wrapped: %v", err)
						}
					}
					return
				}

				// Rerank and postprocess failures degrade gracefully.
				if err != nil {
					t.Fatalf("%s failure was fatal: %v", stage, err)
				}
				if !tr.Degraded {
					t.Fatal("result not flagged Degraded")
				}
				if len(tr.Warnings) == 0 || !strings.Contains(strings.Join(tr.Warnings, "; "), string(stage)) {
					t.Fatalf("warnings do not name the failed stage: %v", tr.Warnings)
				}
				if tr.Top == nil || len(tr.Ranked) == 0 {
					t.Fatal("degraded result carries no candidates")
				}

				if stage == faults.Rerank && kind != "deadline" {
					// Fallback is the retrieval-order candidate list: same
					// candidates as the clean run (only the order may
					// differ), with retrieval scores non-increasing.
					if got := sqlSet(tr.Ranked); !sameSet(got, cleanSet) {
						t.Fatalf("degraded candidate set differs from clean run:\n got %v\nwant %v", got, cleanSet)
					}
					for i := 1; i < len(tr.Ranked); i++ {
						if tr.Ranked[i].Score > tr.Ranked[i-1].Score {
							t.Fatal("fallback is not in retrieval score order")
						}
					}
				}
				if stage == faults.Postprocess {
					// Fallback returns the ranked SQL with placeholders
					// still masked: no literal is filled from the NL.
					masked := false
					for _, c := range tr.Ranked {
						if strings.Contains(c.SQL.String(), "'value'") {
							masked = true
						}
						if strings.Contains(c.SQL.String(), "30") {
							t.Fatalf("degraded postprocess filled a literal: %s", c.SQL)
						}
					}
					if !masked {
						t.Fatal("no masked placeholder in degraded candidates")
					}
				}
			})
		}
	}
}

// TestFaultMatrixExecGuide extends the matrix to the fourth boundary:
// a fault in the execution-guided stage is never fatal — the result is
// flagged Degraded, the warning names the stage, no verdicts are
// attached, and the candidates fall back to the pre-execution LTR
// order, byte-identical to what an ExecGuide-off system produces from
// the same seed.
func TestFaultMatrixExecGuide(t *testing.T) {
	sys := trainedSystem(t, core.Options{ExecGuide: true})
	ref := trainedSystem(t, core.Options{})
	const q = "which employees are older than 30"

	clean, err := sys.Translate(q)
	if err != nil {
		t.Fatal(err)
	}
	if clean.Degraded || len(clean.Verdicts) == 0 {
		t.Fatalf("clean exec-guided translation unhealthy: degraded=%v verdicts=%d",
			clean.Degraded, len(clean.Verdicts))
	}
	refClean, err := ref.Translate(q)
	if err != nil {
		t.Fatal(err)
	}
	wantOrder := renderOrder(refClean.Ranked)

	injectedErr := errors.New("injected failure")
	for _, kind := range []string{"error", "panic", "deadline"} {
		t.Run(kind, func(t *testing.T) {
			inj := faults.NewInjector(1)
			ctx := context.Background()
			switch kind {
			case "error":
				inj.Fail(faults.ExecGuide, injectedErr)
			case "panic":
				inj.Panic(faults.ExecGuide, "kaboom")
			case "deadline":
				inj.Delay(faults.ExecGuide, time.Hour)
				var cancel context.CancelFunc
				ctx, cancel = context.WithTimeout(ctx, 30*time.Millisecond)
				defer cancel()
			}
			sys.SetFaultInjector(inj)
			defer sys.SetFaultInjector(nil)

			tr, err := sys.TranslateContext(ctx, q)
			if inj.Fired(faults.ExecGuide) == 0 {
				t.Fatal("fault plan never fired")
			}
			if err != nil {
				t.Fatalf("execguide failure was fatal: %v", err)
			}
			if !tr.Degraded {
				t.Fatal("result not flagged Degraded")
			}
			if !strings.Contains(strings.Join(tr.Warnings, "; "), string(faults.ExecGuide)) {
				t.Fatalf("warnings do not name the execguide stage: %v", tr.Warnings)
			}
			if len(tr.Verdicts) != 0 {
				t.Fatalf("degraded execguide result still carries verdicts: %v", tr.Verdicts)
			}
			if kind == "deadline" {
				// The whole-translate deadline may cut later work short;
				// candidate-order equality is only guaranteed for the
				// stage-local failures.
				return
			}
			if got := renderOrder(tr.Ranked); got != wantOrder {
				t.Fatalf("degraded candidates are not the pre-execution LTR order:\n got %s\nwant %s", got, wantOrder)
			}
		})
	}
}

func renderOrder(cands []core.Candidate) string {
	var sb strings.Builder
	for _, c := range cands {
		sb.WriteString(c.SQL.String())
		sb.WriteString(" | ")
	}
	return sb.String()
}

// TestTranslateContextCancelled asserts an already-cancelled context is
// fatal before any stage runs.
func TestTranslateContextCancelled(t *testing.T) {
	sys := trainedSystem(t, core.Options{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := sys.TranslateContext(ctx, "how many employees are there")
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	se, ok := core.AsStageError(err)
	if !ok || se.Stage != core.StageRetrieval {
		t.Fatalf("cancellation not attributed to retrieval: %v", err)
	}
}

// TestTranslateContextIVF checks cancellation also reaches the IVF probe
// path.
func TestTranslateContextIVF(t *testing.T) {
	sys := trainedSystem(t, core.Options{UseIVF: true})
	tr, err := sys.TranslateContext(context.Background(), "how many employees are there")
	if err != nil || tr.Top == nil {
		t.Fatalf("IVF translate failed: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := sys.TranslateContext(ctx, "how many employees are there"); err == nil {
		t.Fatal("cancelled IVF translate succeeded")
	}
}

func sqlSet(cands []core.Candidate) map[string]bool {
	out := make(map[string]bool, len(cands))
	for _, c := range cands {
		out[c.SQL.String()] = true
	}
	return out
}

func sameSet(a, b map[string]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}
