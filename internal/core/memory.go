package core

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"

	"repro/internal/embed"
	"repro/internal/faults"
	"repro/internal/generalize"
	"repro/internal/ltr"
	"repro/internal/memgov"
	"repro/internal/parallel"
	"repro/internal/schema"
	"repro/internal/spill"
	"repro/internal/sqlast"
	"repro/internal/sqlparse"
	"repro/internal/vector"
)

// This file is the resource-governance layer of pool construction and
// serving: every byte a published snapshot retains (candidate pool,
// dialect embeddings) is accounted against a memgov budget, pool
// construction streams candidates through a bounded RAM buffer that
// overflows into crash-safe spill runs (internal/spill), and every
// pressure or spill-disk failure degrades — truncated pool, Degraded
// flag, healthz counters — instead of OOM-killing or panicking.
//
// The degradation ladder, mildest first:
//
//  1. RAM buffer budget trips → records move to disk (no quality loss;
//     replay is byte-identical to the in-RAM order).
//  2. Frontier or snapshot budget trips → the pool is truncated at the
//     denial point and the build is flagged Degraded.
//  3. Spill disk fails (write, sync, rename, read) → whatever is still
//     in RAM or readable becomes the pool, truncated and Degraded.

// resources carries the budget and spill directory a build reads.
// They live behind one atomic pointer because builds run outside
// writeMu (Prepare and Swap construct off to the side) while the fleet
// installs per-tenant budgets after New.
type resources struct {
	budget   *memgov.Budget
	spillDir string
	bufBytes int64 // RAM record-buffer cap before spilling; 0 derives from the budget
}

// SetResources installs the memory budget and spill directory used by
// every subsequent pool build, overriding the Options the system was
// created with. The fleet calls it right after constructing a tenant's
// system, before any Prepare/Swap/Restore can run.
func (s *System) SetResources(budget *memgov.Budget, spillDir string) {
	cur := s.resources.Load()
	bufBytes := int64(0)
	if cur != nil {
		bufBytes = cur.bufBytes
	}
	s.resources.Store(&resources{budget: budget, spillDir: spillDir, bufBytes: bufBytes})
	s.governCaches(budget)
}

// governCaches points the translation-path caches' byte accounting at
// budget, so cached embeddings and translations share the same account
// as the snapshot they were computed from.
func (s *System) governCaches(budget *memgov.Budget) {
	s.embedCache.Govern(budget, vecBytes)
	s.transCache.Govern(budget, translationBytes)
}

// translationBytes estimates the retained size of a cached translation:
// each ranked candidate's dialect string plus its (heavier) SQL AST,
// the warnings, and the execution verdicts.
func translationBytes(t *Translation) int64 {
	n := int64(256)
	for i := range t.Ranked {
		n += int64(len(t.Ranked[i].Dialect))*9 + 128
	}
	for _, w := range t.Warnings {
		n += int64(len(w))
	}
	return n + int64(len(t.Verdicts))*64
}

// spillRunBytes rotates a spill run once it grows past this size, so
// replay merges several bounded runs instead of scanning one unbounded
// file. Variable (not const) so tests can force multi-run merges with
// small pools.
var spillRunBytes int64 = 4 << 20

// Size estimators. memgov is an accountant, not an allocator: these
// deterministic estimates (derived only from string lengths, so a
// spilled and an in-RAM build account identically) stand in for the
// retained heap bytes of each structure.

// recBytes estimates one buffered (sql, dialect) record.
func recBytes(r poolRec) int64 { return int64(len(r.sql)+len(r.dialect)) + 64 }

// candBytes estimates one materialized pool candidate: the parsed AST
// weighs roughly an order of magnitude more than its printed form.
func candBytes(r poolRec) int64 { return int64(len(r.sql)+len(r.dialect))*8 + 256 }

// vecBytes estimates one dialect embedding.
func vecBytes(v vector.Vec) int64 { return int64(len(v))*8 + 48 }

// buildInfo is the degradation record of one pool build, published
// with the snapshot and surfaced through MemStats / healthz.
type buildInfo struct {
	Degraded      bool
	DegradeReason string
	SpillFiles    int
	SpillFrames   int
	SpillBytes    int64
}

func (bi *buildInfo) degrade(reason string) {
	bi.Degraded = true
	if bi.DegradeReason == "" {
		bi.DegradeReason = reason
	}
}

// poolBuild is the outcome of one streaming pool construction.
type poolBuild struct {
	pool  []ltr.Candidate
	idx   *ltr.PoolIndex
	stats generalize.Stats
	info  buildInfo
	// mem accounts the materialized pool (and later its embeddings)
	// against the tenant budget; the snapshot that publishes this pool
	// adopts it, and it is released when that pool is replaced.
	mem *memgov.Reservation
}

// poolRec is the serialized form of one streamed candidate: exactly
// the poolEntry shape checkpoints persist, so the spill path and the
// restore path share one round-trip discipline (print → parse → bind)
// whose fixed-point property the snapshot tests already pin.
type poolRec struct {
	seq     uint64
	sql     string
	dialect string
}

// encodeRec renders the record payload: u32 sql length, sql, dialect.
func encodeRec(r poolRec) []byte {
	buf := make([]byte, 4+len(r.sql)+len(r.dialect))
	buf[0] = byte(len(r.sql) >> 24)
	buf[1] = byte(len(r.sql) >> 16)
	buf[2] = byte(len(r.sql) >> 8)
	buf[3] = byte(len(r.sql))
	copy(buf[4:], r.sql)
	copy(buf[4+len(r.sql):], r.dialect)
	return buf
}

func decodeRec(seq uint64, payload []byte) (poolRec, error) {
	if len(payload) < 4 {
		return poolRec{}, fmt.Errorf("%w: record of %d bytes lacks a length header", spill.ErrCorrupt, len(payload))
	}
	n := int(payload[0])<<24 | int(payload[1])<<16 | int(payload[2])<<8 | int(payload[3])
	if n < 0 || n > len(payload)-4 {
		return poolRec{}, fmt.Errorf("%w: record sql length %d exceeds payload", spill.ErrCorrupt, n)
	}
	return poolRec{seq: seq, sql: string(payload[4 : 4+n]), dialect: string(payload[4+n:])}, nil
}

// poolSink consumes the generalizer's stream. Records accumulate in
// RAM while the buffer budget allows; the first denial moves the whole
// buffer to a spill run and subsequent records append to rotating
// runs, so the candidate pool's size is bounded by disk. Spill-disk
// failures flip the sink into truncation mode: it keeps what it has
// and drops the rest, degraded but never failing the build.
type poolSink struct {
	bufRes   *memgov.Reservation
	spillDir string
	inj      *faults.Injector
	express  func(*sqlast.Query) string

	recs     []poolRec
	runs     []string
	w        *spill.Writer
	seq      uint64
	spilling bool
	broken   bool // spill failed: truncate instead of spilling
	info     buildInfo
}

func newPoolSink(res *resources, inj *faults.Injector, express func(*sqlast.Query) string) *poolSink {
	ps := &poolSink{spillDir: res.spillDir, inj: inj, express: express}
	bufBytes := res.bufBytes
	if bufBytes <= 0 {
		// Default: a quarter of the tightest limit on the chain. With no
		// limit anywhere the buffer is unbounded and nothing ever spills
		// — the ungoverned fast path.
		bufBytes = res.budget.EffectiveLimit() / 4
	}
	if res.budget != nil {
		ps.bufRes = res.budget.Child("poolbuild.buffer", bufBytes).Hold()
	}
	return ps
}

// add is the generalize.Sink: it serializes the candidate (SQL text
// printed and dialect rendered from the live AST, so both are
// byte-identical to what the in-RAM path would keep) and buffers or
// spills it. It never returns an error: every failure degrades.
func (ps *poolSink) add(q *sqlast.Query) error {
	rec := poolRec{seq: ps.seq, sql: q.String(), dialect: ps.express(q)}
	ps.seq++
	if ps.broken {
		return nil
	}
	if !ps.spilling {
		if err := ps.bufRes.Grow(recBytes(rec)); err == nil {
			ps.recs = append(ps.recs, rec)
			return nil
		}
		// The RAM buffer budget tripped: move everything accumulated so
		// far into a spill run and switch to disk.
		ps.beginSpill()
		if ps.broken {
			return nil
		}
	}
	ps.append(rec)
	return nil
}

// beginSpill flushes the RAM buffer into the first spill run. On
// success the buffer's reservation is released (the bytes now live on
// disk); on failure the sink keeps the RAM buffer as the truncated
// pool basis and stops accepting records.
func (ps *poolSink) beginSpill() {
	if ps.spillDir == "" {
		ps.fail(fmt.Errorf("spill disabled: no spill directory configured"))
		return
	}
	ps.spilling = true
	for _, rec := range ps.recs {
		ps.append(rec)
		if ps.broken {
			return
		}
	}
	ps.recs = nil
	ps.bufRes.Release()
}

// append writes one record to the current spill run, rotating runs at
// the size cap.
func (ps *poolSink) append(rec poolRec) {
	if ps.w == nil {
		w, err := spill.Create(ps.spillDir, "pool", ps.inj)
		if err != nil {
			ps.fail(err)
			return
		}
		ps.w = w
	}
	if err := ps.w.Append(spill.Record(rec.seq, encodeRec(rec))); err != nil {
		ps.fail(err)
		return
	}
	ps.info.SpillFrames++
	if ps.w.Bytes() >= spillRunBytes {
		ps.rotate()
	}
}

// rotate finishes the current run and starts counting toward the next.
func (ps *poolSink) rotate() {
	w := ps.w
	ps.w = nil
	bytes, frames := w.Bytes(), w.Frames()
	if path, err := w.Finish(); err != nil {
		// The whole run's frames died with the temp file.
		ps.info.SpillFrames -= frames
		ps.fail(err)
	} else {
		ps.runs = append(ps.runs, path)
		ps.info.SpillFiles++
		ps.info.SpillBytes += bytes
	}
}

// fail flips the sink into truncation mode: rung 3 of the ladder.
// Records flushed from the RAM buffer into an aborted run still have
// their buffer reservation (beginSpill releases it only after a
// complete flush), so ps.recs remains a recovery source when the
// flush itself failed.
func (ps *poolSink) fail(err error) {
	ps.broken = true
	ps.info.degrade(err.Error())
	if ps.w != nil {
		ps.info.SpillFrames -= ps.w.Frames()
		ps.w.Abort()
		ps.w = nil
	}
}

// finish replays every record — from RAM, or merged across spill runs
// — into the materialized candidate pool, accounting each candidate
// against the snapshot reservation. Replay parses and binds each
// record's SQL whether or not it ever touched disk, so a spilled build
// and an in-RAM build construct byte-identical pools by construction.
func (ps *poolSink) finish(db *schema.Database, snap *memgov.Reservation) ([]ltr.Candidate, buildInfo) {
	defer ps.bufRes.Release()
	if ps.w != nil {
		ps.rotate()
	}
	defer ps.cleanup()

	var pool []ltr.Candidate
	stopped := false
	keep := func(rec poolRec) bool {
		cand, err := materialize(db, rec, snap)
		if err != nil {
			ps.info.degrade(err.Error())
			stopped = true
			return false
		}
		pool = append(pool, cand)
		return true
	}

	// Replay pass 1: the finished spill runs, merged by sequence.
	var last uint64
	merged := false
	if len(ps.runs) > 0 {
		readers := make([]*spill.Reader, 0, len(ps.runs))
		for _, path := range ps.runs {
			r, err := spill.Open(path, ps.inj)
			if err != nil {
				ps.info.degrade(err.Error())
				continue
			}
			readers = append(readers, r)
		}
		merge := spill.NewMerge(readers...)
		for !stopped {
			seq, payload, err := merge.Next()
			if errors.Is(err, io.EOF) {
				break
			}
			if err != nil {
				// A failing disk mid-merge: keep the replayed prefix.
				ps.info.degrade(err.Error())
				break
			}
			rec, err := decodeRec(seq, payload)
			if err != nil {
				ps.info.degrade(err.Error())
				break
			}
			if keep(rec) {
				last, merged = seq, true
			}
		}
		if merge.Torn() {
			ps.info.degrade("spill run ended at a torn tail")
		}
		for _, r := range readers {
			closeSpill(r)
		}
	}

	// Replay pass 2: the RAM buffer. On the pure-RAM path this is the
	// whole pool; after a failed flush into the first spill run it still
	// holds every record (beginSpill keeps it until the flush lands),
	// so the tail beyond the last merged sequence recovers what the
	// aborted run lost. After a successful flush it is empty.
	for _, rec := range ps.recs {
		if stopped || (merged && rec.seq <= last) {
			continue
		}
		keep(rec)
	}

	if dropped := int(ps.seq) - len(pool); dropped > 0 && ps.info.Degraded {
		ps.info.degrade("truncated pool")
		ps.info.DegradeReason = fmt.Sprintf("%s (%d candidates dropped)", ps.info.DegradeReason, dropped)
	}
	return pool, ps.info
}

// materialize re-parses and re-binds one record into a pool candidate,
// charging the snapshot reservation first so a denial truncates before
// allocating the AST.
func materialize(db *schema.Database, rec poolRec, snap *memgov.Reservation) (ltr.Candidate, error) {
	if err := snap.Grow(candBytes(rec)); err != nil {
		return ltr.Candidate{}, err
	}
	q, err := sqlparse.Parse(rec.sql)
	if err != nil {
		snap.Shrink(candBytes(rec))
		return ltr.Candidate{}, fmt.Errorf("core: streamed candidate %d does not re-parse: %v", rec.seq, err)
	}
	if err := db.Bind(q); err != nil {
		snap.Shrink(candBytes(rec))
		return ltr.Candidate{}, fmt.Errorf("core: streamed candidate %d does not re-bind: %v", rec.seq, err)
	}
	return ltr.Candidate{SQL: q, Dialect: rec.dialect}, nil
}

// cleanup removes this build's finished spill runs; they are scratch
// and fully replayed (or abandoned) by now.
//
//garlint:allow errlost -- best-effort scratch removal after replay; the pool already carries the data (or the degradation flag)
func (ps *poolSink) cleanup() {
	for _, path := range ps.runs {
		_ = os.Remove(path)
	}
	ps.runs = nil
}

// closeSpill closes a reader whose run is about to be deleted.
//
//garlint:allow errlost -- the run is scratch and removed right after; a close failure has nothing to unwind
func closeSpill(r *spill.Reader) {
	_ = r.Close()
}

// buildPoolGoverned is the streaming, budget-accounted pool build:
// generalize.Stream feeds the sink, the sink buffers or spills, and
// replay materializes the pool under the snapshot reservation. It
// subsumes the old materialize-everything buildPool — an unbudgeted
// system takes the same path with every governor inert.
func (s *System) buildPoolGoverned(samples []*sqlast.Query) *poolBuild {
	res := s.resources.Load()
	inj := s.state.Load().inj
	sink := newPoolSink(res, inj, s.expression)
	gres, err := generalize.Stream(s.DB, samples, generalize.Config{
		TargetSize: s.Opts.GeneralizeSize,
		Seed:       s.Opts.Seed,
		Rules:      generalize.AllRules(),
		Budget:     res.budget,
	}, sink.add)
	if err != nil {
		// The sink never returns an error (failures degrade); keep the
		// contract visible rather than discarding it.
		sink.info.degrade(err.Error())
	}

	build := &poolBuild{stats: gres.Stats, mem: res.budget.Hold()}
	build.pool, build.info = sink.finish(s.DB, build.mem)
	if gres.Degraded {
		build.info.Degraded = true
		if build.info.DegradeReason == "" {
			build.info.DegradeReason = gres.DegradeReason
		}
	}
	build.idx = ltr.NewPoolIndex(build.pool)
	if build.info.Degraded {
		s.memDegradedBuilds.Add(1)
	}
	return build
}

// encodeBatch is how many dialects one budget reservation covers
// during the embedding build: coarse enough to stay off the hot path,
// fine enough that a denial truncates within one batch of the limit.
const encodeBatch = 256

// buildIndexGoverned embeds the pool's dialects in bounded batches,
// growing the snapshot reservation per batch. A denial truncates the
// pool at the last complete batch: retrieval quality degrades (fewer
// candidates) but the system stays up. A budget too small for even the
// first batch is an error — that snapshot cannot exist at any size,
// and the caller must keep (or report) what it has.
//
//garlint:allow ctxpass errlost -- snapshot build: no caller context to thread, and the ForEach body never returns an error
func buildIndexGoverned(pool []ltr.Candidate, encoder *embed.Encoder, opts Options, snap *memgov.Reservation) ([]ltr.Candidate, []vector.Vec, error) {
	vecs := make([]vector.Vec, 0, len(pool))
	for start := 0; start < len(pool); start += encodeBatch {
		end := min(start+encodeBatch, len(pool))
		batch := make([]vector.Vec, end-start)
		_ = parallel.ForEach(context.Background(), end-start, opts.Workers, func(i int) error {
			batch[i] = encoder.Encode(pool[start+i].Dialect)
			return nil
		})
		var batchBytes int64
		for _, v := range batch {
			batchBytes += vecBytes(v)
		}
		if err := snap.Grow(batchBytes); err != nil {
			if start == 0 {
				return nil, nil, fmt.Errorf("core: memory budget cannot hold one snapshot: %w", err)
			}
			return pool[:start], vecs, nil
		}
		vecs = append(vecs, batch...)
	}
	return pool, vecs, nil
}

// candBytesOf recomputes the accounting estimate of a materialized
// candidate — the same value materialize charged for its record, since
// printing the bound AST reproduces the record's SQL text.
func candBytesOf(c ltr.Candidate) int64 {
	return int64(len(c.SQL.String())+len(c.Dialect))*8 + 256
}

// newPipelineGoverned assembles the online pipeline with the embedding
// vectors accounted in a fresh reservation against budget. Budget
// pressure truncates the pool to the candidates whose embeddings fit:
// the survivors get a rebuilt lookup index and the dropped candidates'
// bytes return from poolRes to the budget. When the pool itself has
// consumed the whole budget — even the first embedding batch is
// denied — the tail of the pool is shed to make room and the build
// retries, so a tight-but-viable budget yields a small serving
// snapshot instead of no snapshot. Only a budget that cannot hold one
// candidate with its embedding is an error.
func newPipelineGoverned(pool []ltr.Candidate, poolIdx *ltr.PoolIndex, m *Models, opts Options,
	budget *memgov.Budget, poolRes *memgov.Reservation,
) (*ltr.Pipeline, []ltr.Candidate, *ltr.PoolIndex, *memgov.Reservation, bool, error) {
	vecRes := budget.Hold()
	full := len(pool)
	kept, vecs, err := buildIndexGoverned(pool, m.Encoder, opts, vecRes)
	for err != nil && errors.Is(err, memgov.ErrBudgetExceeded) && len(pool) > 1 {
		cut := len(pool) / 2
		for _, c := range pool[cut:] {
			poolRes.Shrink(candBytesOf(c))
		}
		pool = pool[:cut]
		kept, vecs, err = buildIndexGoverned(pool, m.Encoder, opts, vecRes)
	}
	if err != nil {
		vecRes.Release()
		return nil, nil, nil, nil, false, err
	}
	truncated := len(kept) < full
	if truncated {
		for _, c := range pool[len(kept):] {
			poolRes.Shrink(candBytesOf(c))
		}
		poolIdx = ltr.NewPoolIndex(kept)
	}
	pipe := &ltr.Pipeline{
		Encoder:    m.Encoder,
		Index:      indexFromVecs(vecs, opts),
		Pool:       kept,
		PoolIdx:    poolIdx,
		K:          opts.RetrievalK,
		SkipRerank: opts.NoRerank,
		Reranker:   m.Reranker,
		DialVecs:   vecs,
		Costs:      poolCosts(kept),
		Workers:    opts.Workers,
	}
	return pipe, kept, poolIdx, vecRes, truncated, nil
}

// adoptSnapMem installs the reservations accounting the snapshot being
// published: whichever half (pool, embeddings) is replaced returns its
// outgoing bytes to the budget. Passing the currently-held reservation
// keeps that half's account. Callers hold writeMu.
func (s *System) adoptSnapMem(poolMem, vecMem *memgov.Reservation) {
	if s.snapMem != nil && s.snapMem != poolMem {
		s.snapMem.Release()
	}
	if s.vecMem != nil && s.vecMem != vecMem {
		s.vecMem.Release()
	}
	s.snapMem = poolMem
	s.vecMem = vecMem
	s.snapBytes.Store(poolMem.Bytes() + vecMem.Bytes())
}

// MemStats is the resource-governance gauge block surfaced through
// /healthz: the budget's accounting, the published snapshot's retained
// bytes, and the degradation/spill record of the build that produced
// the current pool.
type MemStats struct {
	// Budget is the system's budget level (the tenant share under the
	// fleet); nil when unbudgeted.
	Budget *memgov.Stats `json:"budget,omitempty"`
	// SnapshotBytes is the accounted size of the published snapshot
	// (candidate pool + dialect embeddings).
	SnapshotBytes int64 `json:"snapshot_bytes"`
	// Degraded and DegradeReason describe the published pool's build.
	Degraded      bool   `json:"degraded"`
	DegradeReason string `json:"degrade_reason,omitempty"`
	// Spill gauges of the published pool's build.
	SpillFiles  int   `json:"spill_files"`
	SpillFrames int   `json:"spill_frames"`
	SpillBytes  int64 `json:"spill_bytes"`
	// DegradedBuilds counts builds that finished degraded over this
	// system's lifetime.
	DegradedBuilds uint64 `json:"degraded_builds"`
}

// MemStats reports the resource-governance gauges, lock-free.
func (s *System) MemStats() MemStats {
	st := s.state.Load()
	ms := MemStats{
		SnapshotBytes:  s.snapBytes.Load(),
		Degraded:       st.info.Degraded,
		DegradeReason:  st.info.DegradeReason,
		SpillFiles:     st.info.SpillFiles,
		SpillFrames:    st.info.SpillFrames,
		SpillBytes:     st.info.SpillBytes,
		DegradedBuilds: s.memDegradedBuilds.Load(),
	}
	if res := s.resources.Load(); res != nil {
		ms.Budget = res.budget.Stats()
	}
	return ms
}

// ReleaseMemory returns every byte this system holds against the
// budget — the published snapshot's reservations and the governed
// caches' accounting. The fleet calls it as the last step of evicting
// a tenant: the System is about to be dropped, and anything left
// charged would bill the shared process budget forever.
func (s *System) ReleaseMemory() {
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	s.adoptSnapMem(nil, nil)
	s.purgeCaches()
}
