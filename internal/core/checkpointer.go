package core

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"time"

	"repro/internal/checkpoint"
)

// CheckpointerConfig tunes the background checkpointer; the zero value
// gives sensible serving defaults.
type CheckpointerConfig struct {
	// Keep is the retention: after every successful write all but the
	// newest Keep generations are pruned. Default 3, minimum 1.
	Keep int
	// Coalesce is the quiet window after a publish notification before
	// the write starts, so a burst of publications (a Prepare
	// immediately followed by its Train, a rapid double reload)
	// produces one checkpoint instead of several. Default 250ms.
	Coalesce time.Duration
	// Backoff and MaxBackoff bound the jittered exponential delay
	// between retries of a failed write. Defaults 500ms and 30s.
	Backoff    time.Duration
	MaxBackoff time.Duration
	// Logf, when set, receives one line per completed write, retry and
	// prune problem. Default: silent.
	Logf func(format string, args ...any)
}

func (cfg *CheckpointerConfig) fill() {
	if cfg.Keep < 1 {
		cfg.Keep = 3
	}
	if cfg.Coalesce <= 0 {
		cfg.Coalesce = 250 * time.Millisecond
	}
	if cfg.Backoff <= 0 {
		cfg.Backoff = 500 * time.Millisecond
	}
	if cfg.MaxBackoff <= 0 {
		cfg.MaxBackoff = 30 * time.Second
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
}

// CheckpointStats is a point-in-time snapshot of the checkpointer's
// counters, surfaced by serving health endpoints.
type CheckpointStats struct {
	// LastGeneration and LastUnix identify the newest successfully
	// written checkpoint (zero before the first write this process).
	LastGeneration uint64 `json:"last_generation"`
	LastUnix       int64  `json:"last_unix"`
	// Writes counts successful checkpoint writes, Failures failed
	// attempts (each retried with backoff), Pruned files removed by
	// retention.
	Writes   uint64 `json:"writes"`
	Failures uint64 `json:"failures"`
	Pruned   uint64 `json:"pruned"`
	// LastError describes the most recent failure, cleared by the next
	// successful write.
	LastError string `json:"last_error,omitempty"`
	// Pending reports a publication that has not been checkpointed yet.
	Pending bool `json:"pending"`
}

// Checkpointer persists the serving snapshot in the background: it
// registers itself as the System's publish hook, coalesces bursts of
// publications, writes one checkpoint per settled state through the
// Store's crash-safe path, prunes old generations, and retries failed
// writes with jittered exponential backoff. Flush writes synchronously
// — the graceful-shutdown path.
type Checkpointer struct {
	sys   *System
	store *checkpoint.Store
	cfg   CheckpointerConfig

	// notify carries the dirty signal from the publish hook to the
	// writer goroutine; capacity 1 makes every send non-blocking and
	// every burst self-coalescing.
	notify chan struct{}

	// writeMu serializes writeOnce between the background loop and
	// Flush, so a shutdown flush cannot interleave with a retry.
	writeMu sync.Mutex

	mu      sync.Mutex
	stats   CheckpointStats
	rng     *rand.Rand
	started bool
	cancel  context.CancelFunc
	done    chan struct{}
}

// NewCheckpointer couples a system with a checkpoint store. Call Start
// to begin background writes; Flush works with or without Start.
func NewCheckpointer(sys *System, store *checkpoint.Store, cfg CheckpointerConfig) *Checkpointer {
	cfg.fill()
	return &Checkpointer{
		sys:    sys,
		store:  store,
		cfg:    cfg,
		notify: make(chan struct{}, 1),
		rng:    rand.New(rand.NewSource(sys.Opts.Seed + 0x6172)),
	}
}

// Notify marks the serving state dirty and wakes the writer. It never
// blocks, so it is safe as a publish hook (it runs under the system's
// write lock). Calling it by hand schedules an extra checkpoint — the
// cold-start path uses that to persist the initially built state.
func (c *Checkpointer) Notify() {
	c.mu.Lock()
	c.stats.Pending = true
	c.mu.Unlock()
	select {
	case c.notify <- struct{}{}:
	default:
	}
}

// Start registers the publish hook and launches the background writer.
// A second Start is a no-op.
//
//garlint:allow ctxpass -- owns the background goroutine's lifetime:
// the root context lives until Stop, not until any caller returns
func (c *Checkpointer) Start() {
	c.mu.Lock()
	if c.started {
		c.mu.Unlock()
		return
	}
	c.started = true
	ctx, cancel := context.WithCancel(context.Background())
	c.cancel = cancel
	c.done = make(chan struct{})
	c.mu.Unlock()

	c.sys.SetPublishHook(c.Notify)
	go c.loop(ctx)
}

// Stop unregisters the hook and stops the background writer, waiting
// for an in-progress write to finish. It does not write a final
// checkpoint — call Flush for that (typically right after Stop, once
// no more mutations can arrive).
func (c *Checkpointer) Stop() {
	c.mu.Lock()
	if !c.started {
		c.mu.Unlock()
		return
	}
	c.started = false
	cancel, done := c.cancel, c.done
	c.mu.Unlock()

	c.sys.SetPublishHook(nil)
	cancel()
	<-done
}

// Shutdown stops the background writer and synchronously flushes the
// current serving state, bounded by ctx — the graceful-shutdown and
// tenant-eviction sequence in one call. A stopped checkpointer may be
// started again (an aborted eviction does exactly that).
func (c *Checkpointer) Shutdown(ctx context.Context) error {
	c.Stop()
	return c.Flush(ctx)
}

// Flush synchronously checkpoints the current serving state, retrying
// with backoff until it succeeds or ctx ends. A system with nothing to
// persist (not Ready yet) flushes trivially.
func (c *Checkpointer) Flush(ctx context.Context) error {
	backoff := c.cfg.Backoff
	for {
		err := c.writeOnce()
		if err == nil || errors.Is(err, ErrNotReady) {
			return nil
		}
		select {
		case <-ctx.Done():
			return err
		case <-time.After(c.jitter(backoff)):
		}
		backoff = min(backoff*2, c.cfg.MaxBackoff)
	}
}

// Stats returns a snapshot of the checkpointer's counters.
func (c *Checkpointer) Stats() CheckpointStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// loop is the background writer: wait dirty → coalesce → write, with
// jittered exponential backoff on failure. A publication arriving
// while a write (or backoff) is in progress re-arms the loop, so the
// newest state is always the one that ends up on disk.
func (c *Checkpointer) loop(ctx context.Context) {
	defer close(c.done)
	for {
		select {
		case <-ctx.Done():
			return
		case <-c.notify:
		}
		// Coalesce: let the burst settle so Prepare-then-Train (two
		// publications) costs one checkpoint, not two.
		select {
		case <-ctx.Done():
			return
		case <-time.After(c.cfg.Coalesce):
		}
		// Absorb everything that arrived during the window: the write
		// below reads the state published last, covering them all.
		select {
		case <-c.notify:
		default:
		}

		backoff := c.cfg.Backoff
		for {
			err := c.writeOnce()
			if err == nil || errors.Is(err, ErrNotReady) {
				// ErrNotReady is a bare Prepare with no models yet:
				// nothing durable to write until the next publication.
				break
			}
			c.cfg.Logf("checkpoint write failed (retrying in ~%s): %v", backoff, err)
			select {
			case <-ctx.Done():
				return
			case <-time.After(c.jitter(backoff)):
			}
			backoff = min(backoff*2, c.cfg.MaxBackoff)
		}
	}
}

// writeOnce exports, writes and prunes one checkpoint, updating the
// counters. Serialized against concurrent Flush/loop writes.
func (c *Checkpointer) writeOnce() error {
	c.writeMu.Lock()
	defer c.writeMu.Unlock()

	m, sections, err := c.sys.ExportCheckpoint()
	if err == nil {
		err = c.store.Write(m, sections)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if err != nil {
		if !errors.Is(err, ErrNotReady) {
			c.stats.Failures++
			c.stats.LastError = err.Error()
		}
		return err
	}
	c.stats.Writes++
	c.stats.LastGeneration = m.Generation
	c.stats.LastUnix = time.Now().Unix()
	c.stats.LastError = ""
	c.stats.Pending = false

	removed, perr := c.store.Prune(c.cfg.Keep)
	c.stats.Pruned += uint64(len(removed))
	if perr != nil {
		// Retention failure never fails the write: the new checkpoint
		// is durable, there is just more history than asked for.
		c.cfg.Logf("checkpoint prune: %v", perr)
	}
	c.cfg.Logf("checkpoint generation %d written (%d sections, kept %d)", m.Generation, len(sections), c.cfg.Keep)
	return nil
}

// jitter spreads a delay over [d/2, d) so synchronized retry storms
// decorrelate.
func (c *Checkpointer) jitter(d time.Duration) time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	half := d / 2
	return half + time.Duration(c.rng.Int63n(int64(half)+1))
}
