package core_test

import (
	"context"
	"errors"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/embed"
	"repro/internal/faults"
	"repro/internal/feedback"
	"repro/internal/norm"
	"repro/internal/sqlparse"
)

// trainerOpts keeps the trainer suite fast: smaller pool, same forced
// training epochs as trainedSystem.
func trainerOpts() core.Options {
	return core.Options{GeneralizeSize: 120, RetrievalK: 8}
}

func trainerBase() func() (core.TrainingData, error) {
	return func() (core.TrainingData, error) {
		return core.TrainingData{Samples: employeeSamples(), Examples: employeeExamples()}, nil
	}
}

// feedbackLog builds a WAL holding the given (question, SQL) pairs.
func feedbackLog(t *testing.T, pairs [][2]string) *feedback.Log {
	t.Helper()
	l, err := feedback.Open(filepath.Join(t.TempDir(), "feedback"), feedback.Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	for _, p := range pairs {
		if _, err := l.Append(feedback.Record{Question: p[0], SQL: p[1], Source: feedback.SourceChosen}); err != nil {
			t.Fatal(err)
		}
	}
	return l
}

var trainerFeedback = [][2]string{
	{"what is the total number of employees", "SELECT COUNT(*) FROM employee"},
	{"show every city with its employee count", "SELECT city, COUNT(*) FROM employee GROUP BY city"},
	{"name the employee with the highest age", "SELECT name FROM employee ORDER BY age DESC LIMIT 1"},
	{"what cities do the employees come from", "SELECT city FROM employee"},
}

// degenerate replaces the trained models with an untrained random
// encoder and no re-ranker: a valid but useless ranker, the
// fault-injected "bad candidate" of the acceptance criteria.
func degenerate(m *core.Models) {
	enc := embed.NewEncoder(embed.Config{Seed: 99})
	enc.FitIDF([]string{"zzz unrelated corpus"})
	m.Encoder = enc
	m.Reranker = nil
}

func TestTrainerPromotesAndRetrains(t *testing.T) {
	sys := trainedSystem(t, trainerOpts())
	log := feedbackLog(t, trainerFeedback)
	tr := core.NewTrainer(sys, log, nil, trainerBase(), core.TrainerConfig{
		// The candidate trains on a superset of the base corpus; allow
		// modest seed jitter but reject real regressions.
		ShadowThreshold: 0.25,
	})

	genBefore := sys.Generation()
	if err := tr.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	st := tr.Stats()
	if st.Promotions != 1 || st.Retrains != 1 || st.Failures != 0 {
		t.Fatalf("stats after promote: %+v", st)
	}
	if sys.Generation() <= genBefore {
		t.Fatalf("promotion did not bump the generation: %d -> %d", genBefore, sys.Generation())
	}
	if st.LastShadow == nil || !st.LastShadow.Promoted || st.LastShadow.Evaluated == 0 {
		t.Fatalf("LastShadow after promote: %+v", st.LastShadow)
	}
	if st.TrainedSeq != log.LastSeq() || st.Pending != 0 {
		t.Fatalf("trained seq %d pending %d, want %d/0", st.TrainedSeq, st.Pending, log.LastSeq())
	}
	// The flagship query still ranks first after retraining.
	res, err := sys.Translate("find the name of the employee who got the highest one time bonus")
	if err != nil || res.Top == nil {
		t.Fatalf("translate after promote: %v", err)
	}
	gold := sqlparse.MustParse(
		"SELECT T1.name FROM employee AS T1 JOIN evaluation AS T2 ON T1.employee_id = T2.employee_id ORDER BY T2.bonus DESC LIMIT 1")
	if !norm.ExactMatch(res.Top.SQL, gold) {
		t.Errorf("flagship query regressed after promotion: %s", res.Top.SQL)
	}
	// A second Flush with nothing new is a trivial success.
	if err := tr.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	if st := tr.Stats(); st.Retrains != 1 {
		t.Fatalf("empty flush retrained: %+v", st)
	}
}

func TestTrainerShadowGateRejectsDegenerate(t *testing.T) {
	sys := trainedSystem(t, trainerOpts())
	log := feedbackLog(t, trainerFeedback)
	tr := core.NewTrainer(sys, log, nil, trainerBase(), core.TrainerConfig{
		MutateCandidate: degenerate,
	})

	genBefore := sys.Generation()
	baseline := answers(t, sys)
	if err := tr.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	st := tr.Stats()
	if st.ShadowRejections != 1 || st.Promotions != 0 {
		t.Fatalf("degenerate candidate not rejected: %+v", st)
	}
	if st.LastShadow == nil || st.LastShadow.Promoted || st.LastShadow.Reason == "" {
		t.Fatalf("LastShadow after rejection: %+v", st.LastShadow)
	}
	if st.LastShadow.Candidate >= st.LastShadow.Live {
		t.Fatalf("degenerate candidate did not score worse: %+v", st.LastShadow)
	}
	// The rejection is consumed (no retry storm), and serving is
	// byte-identical to before the cycle.
	if st.Retrains != 1 || st.TrainedSeq != log.LastSeq() {
		t.Fatalf("rejected cycle not consumed: %+v", st)
	}
	if sys.Generation() != genBefore {
		t.Fatalf("rejected candidate changed the generation: %d -> %d", genBefore, sys.Generation())
	}
	if got := answers(t, sys); !sameAnswers(baseline, got) {
		t.Fatal("rejected candidate changed serving answers")
	}
}

func TestTrainerPanicIsolated(t *testing.T) {
	sys := trainedSystem(t, trainerOpts())
	log := feedbackLog(t, trainerFeedback)
	inj := faults.NewInjector(1)
	inj.Panic(faults.Train, "training exploded")
	tr := core.NewTrainer(sys, log, nil, trainerBase(), core.TrainerConfig{
		Backoff:  5 * time.Millisecond,
		Injector: inj,
	})

	genBefore := sys.Generation()
	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	err := tr.Flush(ctx)
	if err == nil || !strings.Contains(err.Error(), "panic") {
		t.Fatalf("Flush over a panicking cycle = %v, want contained panic", err)
	}
	st := tr.Stats()
	if st.Failures == 0 || st.LastError == "" {
		t.Fatalf("panic not counted as failure: %+v", st)
	}
	// The process is alive and the old ranker still serves.
	if sys.Generation() != genBefore || !sys.Ready() {
		t.Fatal("panicking cycle disturbed serving")
	}
	if _, terr := sys.Translate("how many employees are there"); terr != nil {
		t.Fatalf("translate after contained panic: %v", terr)
	}

	// With the fault gone (Times exhausted via a fresh injector), the
	// same trainer recovers on the next flush.
	inj2 := faults.NewInjector(1)
	tr2 := core.NewTrainer(sys, log, nil, trainerBase(), core.TrainerConfig{Injector: inj2, ShadowThreshold: 0.25})
	if err := tr2.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	if st := tr2.Stats(); st.Retrains != 1 {
		t.Fatalf("recovery flush did not retrain: %+v", st)
	}
}

func TestTrainerGateBudget(t *testing.T) {
	sys := trainedSystem(t, trainerOpts())
	log := feedbackLog(t, trainerFeedback)

	// A denied budget skips the cycle with an error (retried later).
	denied := core.NewTrainer(sys, log, nil, trainerBase(), core.TrainerConfig{
		Gate: func(ctx context.Context) (func(), error) { return nil, errors.New("budget exhausted") },
	})
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := denied.Flush(ctx); err == nil || !strings.Contains(err.Error(), "budget") {
		t.Fatalf("denied gate = %v", err)
	}

	// A granted budget is held for the cycle and released after.
	var mu sync.Mutex
	held, released := 0, 0
	granted := core.NewTrainer(sys, log, nil, trainerBase(), core.TrainerConfig{
		ShadowThreshold: 0.25,
		Gate: func(ctx context.Context) (func(), error) {
			mu.Lock()
			held++
			mu.Unlock()
			return func() { mu.Lock(); released++; mu.Unlock() }, nil
		},
	})
	if err := granted.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if held != 1 || released != 1 {
		t.Fatalf("gate held %d released %d, want 1/1", held, released)
	}
}

func TestTrainerStartStopLoop(t *testing.T) {
	sys := trainedSystem(t, trainerOpts())
	log := feedbackLog(t, trainerFeedback)
	tr := core.NewTrainer(sys, log, nil, trainerBase(), core.TrainerConfig{
		Interval:        10 * time.Millisecond,
		ShadowThreshold: 0.25,
	})
	tr.Start()
	tr.Start() // idempotent
	tr.Notify()
	deadline := time.Now().Add(30 * time.Second)
	for tr.Stats().Retrains == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("background loop never retrained: %+v", tr.Stats())
		}
		time.Sleep(10 * time.Millisecond)
	}
	tr.Stop()
	tr.Stop() // idempotent
	if st := tr.Stats(); st.Retrains == 0 || st.State == core.TrainerTraining {
		t.Fatalf("stats after loop: %+v", st)
	}
	// Shutdown after Stop is a trivial flush.
	if err := tr.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// answers snapshots the byte-exact serving output for every fixture
// question.
func answers(t *testing.T, sys *core.System) map[string]string {
	t.Helper()
	out := make(map[string]string)
	for _, ex := range employeeExamples() {
		tr, err := sys.Translate(ex.NL)
		if err != nil {
			t.Fatalf("translate %q: %v", ex.NL, err)
		}
		if tr.Top == nil {
			out[ex.NL] = ""
			continue
		}
		out[ex.NL] = tr.Top.SQL.String() + "\x00" + tr.Top.Dialect
	}
	return out
}

func sameAnswers(a, b map[string]string) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// TestTrainerRollback is the acceptance drill: a degenerate ranker is
// let through the gate (threshold wide open, as if misconfigured), the
// post-promotion regression detector sees live answers stop matching
// subsequent feedback, and the system rolls back to the pre-promotion
// checkpointed generation — under -race, with translations hammering
// throughout and byte-identical answers before and after.
func TestTrainerRollbackUnderTraffic(t *testing.T) {
	sys := trainedSystem(t, trainerOpts())
	store, err := checkpoint.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	log := feedbackLog(t, trainerFeedback)
	tr := core.NewTrainer(sys, log, store, trainerBase(), core.TrainerConfig{
		ShadowThreshold:  10, // wide open: promote anything
		MutateCandidate:  degenerate,
		RegressWindow:    4,
		RegressThreshold: 0.9,
	})

	baseline := answers(t, sys)

	// Serving must be uninterrupted end to end: hammer translations
	// through promotion and rollback.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	errCh := make(chan error, 4)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			qs := employeeExamples()
			for n := 0; ; n++ {
				select {
				case <-stop:
					return
				default:
				}
				if _, terr := sys.Translate(qs[(n+i)%len(qs)].NL); terr != nil {
					select {
					case errCh <- terr:
					default:
					}
					return
				}
			}
		}(i)
	}

	if err := tr.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	st := tr.Stats()
	if st.Promotions != 1 {
		t.Fatalf("degenerate candidate was not promoted through the open gate: %+v", st)
	}
	promotedGen := sys.Generation()

	// Subsequent feedback: the degenerate live ranker misses, the
	// window fills, the detector fires.
	ctx := context.Background()
	deadline := time.Now().Add(30 * time.Second)
	seq := log.LastSeq()
	for tr.Stats().Rollbacks == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("regression detector never fired: %+v", tr.Stats())
		}
		for _, ex := range employeeExamples()[:4] {
			seq++
			tr.ObserveFeedback(ctx, feedback.Record{
				Seq:      seq,
				Question: ex.NL,
				SQL:      ex.Gold.String(),
				Source:   feedback.SourceCorrected,
			})
		}
		time.Sleep(5 * time.Millisecond)
	}

	close(stop)
	wg.Wait()
	select {
	case terr := <-errCh:
		t.Fatalf("translation failed during promotion/rollback: %v", terr)
	default:
	}

	st = tr.Stats()
	if st.Rollbacks != 1 {
		t.Fatalf("Rollbacks = %d, want 1 (%+v)", st.Rollbacks, st)
	}
	// Generations stay monotonic (a rollback advances to a fresh
	// generation past the demoted one, so stale cache entries keyed by
	// the promoted generation can never serve again), and the answers
	// are byte-identical to the pre-promotion baseline.
	if sys.Generation() < promotedGen {
		t.Fatalf("generation went backwards: %d < %d", sys.Generation(), promotedGen)
	}
	if got := answers(t, sys); !sameAnswers(baseline, got) {
		for k, v := range got {
			if baseline[k] != v {
				t.Errorf("answer diverged after rollback:\n  q: %s\n  before: %s\n  after:  %s", k, baseline[k], v)
			}
		}
		t.Fatal("rollback did not restore byte-identical answers")
	}
	// Further feedback observes a disarmed detector: no second rollback.
	tr.ObserveFeedback(ctx, feedback.Record{Question: "x", SQL: "SELECT city FROM employee", Source: feedback.SourceCorrected})
	if st := tr.Stats(); st.Rollbacks != 1 {
		t.Fatalf("detector fired while disarmed: %+v", st)
	}
}

func TestTrainerMinRecords(t *testing.T) {
	sys := trainedSystem(t, trainerOpts())
	log := feedbackLog(t, trainerFeedback[:2])
	tr := core.NewTrainer(sys, log, nil, trainerBase(), core.TrainerConfig{MinRecords: 3})
	if err := tr.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	if st := tr.Stats(); st.Retrains != 0 || st.Pending != 2 {
		t.Fatalf("below-threshold flush retrained: %+v", st)
	}
}
