package core_test

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/breaker"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/schema/schematest"
)

// swapSystem builds a trained system plus the deployed models, so tests
// can Swap fresh snapshots in.
func swapSystem(t *testing.T, opts core.Options) (*core.System, *core.Models) {
	t.Helper()
	if opts.GeneralizeSize == 0 {
		opts.GeneralizeSize = 200
	}
	if opts.RetrievalK == 0 {
		opts.RetrievalK = 10
	}
	opts.EncoderEpochs = 10
	opts.RerankEpochs = 25
	opts.Seed = 42
	sys := core.New(schematest.Employee(), opts)
	sys.Prepare(employeeSamples())
	models, err := core.TrainModels(
		[]core.TrainingSet{{Sys: sys, Examples: employeeExamples()}}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.UseModels(models); err != nil {
		t.Fatal(err)
	}
	return sys, models
}

func dialectSet(dialects []string) map[string]bool {
	set := make(map[string]bool, len(dialects))
	for _, d := range dialects {
		set[d] = true
	}
	return set
}

// TestSwapTranslateRace is the zero-downtime contract under -race:
// translations running concurrently with repeated pool+model swaps must
// never fail, never block, and every result must be served from exactly
// one snapshot — all its candidates belong to a single generation's
// pool, never a mix of old pool and new models.
func TestSwapTranslateRace(t *testing.T) {
	sys, models := swapSystem(t, core.Options{})
	samplesA := employeeSamples()
	samplesB := employeeSamples()[:5]

	// Generalization is seeded, so each sample set maps to one fixed
	// dialect set; generation parity then identifies the serving pool.
	dialA := dialectSet(sys.PoolDialects()) // generation 1 = set A
	if _, err := sys.Swap(samplesB, models); err != nil { // generation 2
		t.Fatal(err)
	}
	dialB := dialectSet(sys.PoolDialects())
	if _, err := sys.Swap(samplesA, models); err != nil { // generation 3
		t.Fatal(err)
	}
	for _, d := range sys.PoolDialects() {
		if !dialA[d] {
			t.Fatalf("generalization not deterministic: re-swapped pool has new dialect %q", d)
		}
	}

	// Writer: 16 more swaps alternating the sets. After swap i the
	// generation is 4+i, so even generations serve set B, odd serve A.
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(done)
		for i := 0; i < 16; i++ {
			set := samplesB
			if i%2 == 1 {
				set = samplesA
			}
			if _, err := sys.Swap(set, models); err != nil {
				t.Errorf("swap %d during traffic: %v", i, err)
				return
			}
		}
	}()

	questions := []string{
		"how many employees are there",
		"who is the oldest employee",
		"which employees are older than 30",
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-done:
					return
				default:
				}
				tr, err := sys.TranslateContext(context.Background(), questions[(r+i)%len(questions)])
				if err != nil {
					t.Errorf("translate during swap failed: %v", err)
					return
				}
				want, label := dialA, "A"
				if tr.Generation%2 == 0 {
					want, label = dialB, "B"
				}
				for _, c := range tr.Ranked {
					if !want[c.Dialect] {
						t.Errorf("generation %d (set %s) result holds candidate from another snapshot: %q",
							tr.Generation, label, c.Dialect)
						return
					}
				}
			}
		}(r)
	}
	wg.Wait()

	if got, want := sys.Generation(), uint64(19); got != want {
		t.Errorf("generation after 18 swaps: %d, want %d", got, want)
	}
	if !sys.Ready() {
		t.Error("system not ready after swaps")
	}
}

// TestSwapValidation: a rejected swap must leave the serving snapshot
// untouched.
func TestSwapValidation(t *testing.T) {
	sys, _ := swapSystem(t, core.Options{})
	gen := sys.Generation()
	if _, err := sys.Swap(employeeSamples(), nil); err == nil {
		t.Error("Swap accepted nil models")
	}
	if sys.Generation() != gen {
		t.Errorf("failed swap bumped generation: %d -> %d", gen, sys.Generation())
	}
	if !sys.Ready() {
		t.Error("failed swap un-deployed the system")
	}
	if _, err := sys.Translate("how many employees are there"); err != nil {
		t.Errorf("translation after failed swap: %v", err)
	}
}

// TestRerankBreakerTripAndRecover drives the breaker through its full
// cycle inside the pipeline: consecutive re-rank failures trip it, an
// open breaker skips the stage outright (degraded answers with no
// per-request failure cost), and the half-open probe after the cooldown
// closes it again.
func TestRerankBreakerTripAndRecover(t *testing.T) {
	sys, _ := swapSystem(t, core.Options{})
	boom := errors.New("rerank exploded")
	inj := faults.NewInjector(7).
		Inject(faults.Rerank, faults.Plan{Kind: faults.KindError, Err: boom, Times: 3})
	sys.SetFaultInjector(inj)
	br := breaker.New(breaker.Config{
		FailureThreshold: 3,
		Cooldown:         30 * time.Millisecond,
		SuccessThreshold: 1,
	})
	sys.SetRerankBreaker(br)
	ctx := context.Background()

	for i := 0; i < 3; i++ {
		tr, err := sys.TranslateContext(ctx, "how many employees are there")
		if err != nil {
			t.Fatalf("failing re-rank must degrade, not fail (call %d): %v", i, err)
		}
		if !tr.Degraded {
			t.Fatalf("call %d: not degraded", i)
		}
	}
	if st := br.State(); st != breaker.Open {
		t.Fatalf("breaker after 3 consecutive failures: %v, want open", st)
	}

	// Open: the stage is skipped, not retried — the injector must see
	// no further re-rank calls while answers keep flowing.
	calls := inj.Calls(faults.Rerank)
	tr, err := sys.TranslateContext(ctx, "who is the oldest employee")
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Degraded {
		t.Fatal("open breaker must serve degraded answers")
	}
	if got := inj.Calls(faults.Rerank); got != calls {
		t.Fatalf("open breaker still invoked re-ranking: %d calls, was %d", got, calls)
	}

	// After the cooldown the half-open probe reaches the (now healthy)
	// stage and closes the circuit.
	time.Sleep(60 * time.Millisecond)
	tr, err = sys.TranslateContext(ctx, "how many employees are there")
	if err != nil {
		t.Fatal(err)
	}
	if tr.Degraded {
		t.Fatalf("recovered translation still degraded: %v", tr.Warnings)
	}
	if st := br.State(); st != breaker.Closed {
		t.Fatalf("breaker after successful probe: %v, want closed", st)
	}
	snap := br.Snapshot()
	if snap.Trips != 1 {
		t.Errorf("trips: %d, want 1", snap.Trips)
	}
}

// TestStageBudgetBoundsSlowRerank: with a per-stage budget, a
// pathologically slow re-rank degrades early instead of eating the
// whole request deadline.
func TestStageBudgetBoundsSlowRerank(t *testing.T) {
	sys, _ := swapSystem(t, core.Options{
		StageBudget: core.StageBudget{Rerank: 0.2},
	})
	inj := faults.NewInjector(1).Delay(faults.Rerank, 10*time.Second)
	sys.SetFaultInjector(inj)

	ctx, cancel := context.WithTimeout(context.Background(), 500*time.Millisecond)
	defer cancel()
	start := time.Now()
	tr, err := sys.TranslateContext(ctx, "how many employees are there")
	elapsed := time.Since(start)
	if err != nil {
		t.Fatalf("slow re-rank must degrade, not fail: %v", err)
	}
	if !tr.Degraded {
		t.Fatal("slow re-rank not flagged degraded")
	}
	if tr.Top == nil {
		t.Fatal("degraded translation has no result")
	}
	// The stage budget is 20% of the 500ms deadline; well before the
	// deadline itself the request must already be answered.
	if elapsed >= 400*time.Millisecond {
		t.Errorf("stage budget did not bound the slow stage: took %v", elapsed)
	}
}

// TestPrepareDuringTraffic: a bare Prepare (no models yet) un-publishes
// the snapshot; in-flight translations that loaded the old snapshot
// still complete, and new ones get the documented lifecycle error
// rather than a crash or a torn state.
func TestPrepareDuringTraffic(t *testing.T) {
	sys, models := swapSystem(t, core.Options{})
	if !sys.Ready() {
		t.Fatal("system not ready")
	}
	sys.Prepare(employeeSamples())
	if sys.Ready() {
		t.Fatal("Prepare must un-publish the trained snapshot")
	}
	if _, err := sys.TranslateContext(context.Background(), "how many employees are there"); err == nil {
		t.Fatal("translate on unpublished snapshot must error")
	}
	if err := sys.UseModels(models); err != nil {
		t.Fatal(err)
	}
	if !sys.Ready() {
		t.Fatal("UseModels must re-publish")
	}
	if _, err := sys.Translate("how many employees are there"); err != nil {
		t.Fatal(err)
	}
}
