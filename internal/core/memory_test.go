package core_test

import (
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/memgov"
	"repro/internal/schema/schematest"
)

// governedOpts is the shared shape of the resource-governed test
// systems: a roomy budget (governance on, no pressure) and a spill
// buffer so small that every pool build streams through disk.
func governedOpts(spillDir string) core.Options {
	return core.Options{
		GeneralizeSize:   300,
		RetrievalK:       10,
		EncoderEpochs:    12,
		RerankEpochs:     40,
		Seed:             42,
		NoCache:          true,
		MemBudget:        256 << 20,
		SpillDir:         spillDir,
		SpillBufferBytes: 4096,
	}
}

// TestParallelTranslateDeterminismSpill pins the tentpole equivalence:
// a resource-governed system whose pool build spilled through disk
// must produce byte-identical translations — same order, same
// bit-exact scores — as an unbounded system that kept everything in
// RAM, including under concurrent load. Spilling is a placement
// decision, never a quality decision. Runs in the stress target under
// the race detector.
func TestParallelTranslateDeterminismSpill(t *testing.T) {
	ramOpts := core.Options{
		GeneralizeSize: 300,
		RetrievalK:     10,
		EncoderEpochs:  12,
		RerankEpochs:   40,
		Seed:           42,
		NoCache:        true,
		Workers:        1,
	}
	ram := core.New(schematest.Employee(), ramOpts)
	ram.Prepare(employeeSamples())
	if err := ram.Train(employeeExamples()); err != nil {
		t.Fatal(err)
	}

	spillOpts := governedOpts(t.TempDir())
	spillOpts.Workers = 8
	spilled := core.New(schematest.Employee(), spillOpts)
	spilled.Prepare(employeeSamples())
	if err := spilled.Train(employeeExamples()); err != nil {
		t.Fatal(err)
	}

	// The premise must hold: the governed build actually went to disk,
	// cleanly (no truncation, no degradation), and left no scratch.
	ms := spilled.MemStats()
	if ms.SpillFiles == 0 || ms.SpillFrames == 0 {
		t.Fatalf("governed build never spilled: %+v", ms)
	}
	if ms.Degraded {
		t.Fatalf("roomy budget degraded: %q", ms.DegradeReason)
	}
	if spilled.PoolSize() != ram.PoolSize() {
		t.Fatalf("pool size diverged: spilled %d, RAM %d", spilled.PoolSize(), ram.PoolSize())
	}

	questions := []string{
		"find the name of the employee who got the highest one time bonus",
		"which employees are older than 30",
		"how many employees live in each city",
		"what is the average bonus",
		"which shop has the most products",
	}
	want := make(map[string]string, len(questions))
	for _, q := range questions {
		tr, err := ram.Translate(q)
		if err != nil {
			t.Fatalf("RAM translate %q: %v", q, err)
		}
		want[q] = renderTranslation(tr)
	}
	for _, q := range questions {
		tr, err := spilled.Translate(q)
		if err != nil {
			t.Fatalf("spilled translate %q: %v", q, err)
		}
		if got := renderTranslation(tr); got != want[q] {
			t.Fatalf("spilled output diverged for %q:\n--- RAM ---\n%s\n--- spilled ---\n%s", q, want[q], got)
		}
	}

	// Under contention: the spilled system hammered from eight
	// goroutines must keep matching the RAM reference exactly.
	const goroutines, rounds = 8, 5
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				q := questions[(g+r)%len(questions)]
				tr, err := spilled.Translate(q)
				if err != nil {
					errs <- err
					return
				}
				if got := renderTranslation(tr); got != want[q] {
					errs <- errDiverged{q: q}
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestFaultSpillMatrix drives the spill-disk failure matrix —
// {short write, bit flip, sync failure} on the write side, {short
// read, bit flip, read error} on the merge side — through a governed
// pool build. The contract at every cell: the build never panics and
// never returns an error; the published state is flagged Degraded with
// a reason; whatever survived is servable; no spill scratch is left
// behind; and the next clean build fully recovers. Runs in the stress
// target under the race detector.
func TestFaultSpillMatrix(t *testing.T) {
	cases := []struct {
		name  string
		stage faults.Stage
		plan  faults.Plan
		// wantPool: the cell must keep a non-empty (truncated) pool.
		// A sync failure at run finish legitimately loses the whole
		// unsynced run — crash-safety forbids trusting it — so that
		// cell only guarantees the degrade-not-panic half.
		wantPool bool
	}{
		{"short write during buffer flush", faults.FSWrite,
			faults.Plan{Kind: faults.KindShortWrite, Bytes: 7}, true},
		{"bit flip during spill write", faults.FSWrite,
			faults.Plan{Kind: faults.KindBitFlip, Offset: 97, After: 2, Times: 1}, true},
		{"sync failure at run finish", faults.FSSync,
			faults.Plan{Kind: faults.KindError}, false},
		{"short read during merge", faults.FSRead,
			faults.Plan{Kind: faults.KindShortWrite, Bytes: 5, After: 2}, true},
		{"bit flip during merge", faults.FSRead,
			faults.Plan{Kind: faults.KindBitFlip, Offset: 41, After: 2, Times: 1}, true},
		{"read error during merge", faults.FSRead,
			faults.Plan{Kind: faults.KindError, After: 1}, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			spillDir := filepath.Join(t.TempDir(), "spill")
			sys := core.New(schematest.Employee(), governedOpts(spillDir))
			inj := faults.NewInjector(1).Inject(tc.stage, tc.plan)
			sys.SetFaultInjector(inj)
			sys.Prepare(employeeSamples())
			sys.SetFaultInjector(nil)

			if inj.Fired(tc.stage) == 0 {
				t.Fatalf("fault at %s never fired; the matrix cell tested nothing", tc.stage)
			}
			ms := sys.MemStats()
			if !ms.Degraded || ms.DegradeReason == "" {
				t.Fatalf("spill fault not surfaced as degradation: %+v", ms)
			}
			if ms.DegradedBuilds == 0 {
				t.Errorf("degraded-build counter not incremented")
			}
			if tc.wantPool && sys.PoolSize() == 0 {
				t.Fatalf("no candidates survived a recoverable fault")
			}
			if n := spillScratch(t, spillDir); n != 0 {
				t.Errorf("%d spill artifact(s) left behind after a failed build", n)
			}

			// The fault was transient: the next clean build must publish
			// a complete, undegraded pool over the degraded one.
			sys.Prepare(employeeSamples())
			ms = sys.MemStats()
			if ms.Degraded || sys.PoolSize() == 0 {
				t.Fatalf("clean rebuild did not recover: degraded=%v reason=%q pool=%d",
					ms.Degraded, ms.DegradeReason, sys.PoolSize())
			}
			if ms.SpillFiles == 0 {
				t.Errorf("clean rebuild did not spill; buffer cap not exercised")
			}
			if err := sys.Train(employeeExamples()); err != nil {
				t.Fatal(err)
			}
			tr, err := sys.Translate("how many employees are there")
			if err != nil || len(tr.Ranked) == 0 {
				t.Fatalf("recovered system cannot translate: %v", err)
			}
		})
	}
}

// spillScratch counts spill artifacts (runs and temps) left in dir.
func spillScratch(t *testing.T, dir string) int {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return 0
	}
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".spill") || strings.HasSuffix(e.Name(), ".tmp") {
			n++
		}
	}
	return n
}

// TestSetResourcesLifecycle pins the fleet-shaped lifecycle: a budget
// installed after construction via SetResources governs the next build
// (snapshot and caches both accounted), and ReleaseMemory — the
// eviction path — returns every byte, including cache reservations.
func TestSetResourcesLifecycle(t *testing.T) {
	opts := governedOpts(t.TempDir())
	opts.MemBudget = 0
	opts.SpillDir = ""
	opts.NoCache = false
	sys := core.New(schematest.Employee(), opts)

	budget := memgov.New("tenant", 64<<20)
	sys.SetResources(budget, t.TempDir())
	sys.Prepare(employeeSamples())
	if err := sys.Train(employeeExamples()); err != nil {
		t.Fatal(err)
	}
	ms := sys.MemStats()
	if ms.Budget == nil || ms.Budget.Used <= 0 || ms.SnapshotBytes <= 0 {
		t.Fatalf("installed budget not charged: %+v", ms)
	}
	if ms.SpillFiles == 0 {
		t.Fatalf("installed spill dir unused: %+v", ms)
	}
	// A translation populates the governed caches on top of the snapshot.
	if _, err := sys.Translate("how many employees are there"); err != nil {
		t.Fatal(err)
	}
	if budget.Used() <= ms.SnapshotBytes {
		t.Errorf("caches unaccounted: used %d, snapshot alone %d", budget.Used(), ms.SnapshotBytes)
	}

	sys.ReleaseMemory()
	if used := budget.Used(); used != 0 {
		t.Errorf("ReleaseMemory left %d bytes charged", used)
	}
}

// TestTightBudgetShedsPool pins the last rung before failure: a share
// so small the pool alone fills it forces the pipeline to shed
// candidates until the snapshot plus its embeddings fit — a degraded,
// strictly smaller, still-servable system rather than a build error.
func TestTightBudgetShedsPool(t *testing.T) {
	tight := governedOpts(t.TempDir())
	tight.MemBudget = 10 << 10
	sys := core.New(schematest.Employee(), tight)
	sys.Prepare(employeeSamples())

	ms := sys.MemStats()
	if !ms.Degraded {
		t.Fatalf("10KiB budget not degraded: %+v", ms)
	}
	if sys.PoolSize() == 0 {
		t.Fatal("shedding emptied the pool")
	}
	if ms.Budget.Used > ms.Budget.Limit {
		t.Errorf("budget overrun: %+v", ms.Budget)
	}
	if err := sys.Train(employeeExamples()); err != nil {
		t.Fatal(err)
	}
	tr, err := sys.Translate("how many employees are there")
	if err != nil || len(tr.Ranked) == 0 {
		t.Fatalf("shed system cannot translate: %v", err)
	}
}

// TestBudgetPressureDegrades pins rung 2 of the degradation ladder: a
// budget that cannot hold the whole pool truncates it at the denial
// point — flagged Degraded with the drop count in the reason — instead
// of failing the build, and the accountant never exceeds its limit.
func TestBudgetPressureDegrades(t *testing.T) {
	tight := governedOpts(t.TempDir())
	tight.MemBudget = 32 << 10
	sys := core.New(schematest.Employee(), tight)
	sys.Prepare(employeeSamples())

	ms := sys.MemStats()
	if !ms.Degraded || ms.DegradeReason == "" {
		t.Fatalf("budget pressure not surfaced: %+v", ms)
	}
	if sys.PoolSize() == 0 {
		t.Fatal("pressure emptied the pool instead of truncating it")
	}
	if ms.Budget == nil {
		t.Fatal("budget stats missing")
	}
	if ms.Budget.Used > ms.Budget.Limit {
		t.Errorf("budget overrun: used %d > limit %d", ms.Budget.Used, ms.Budget.Limit)
	}
	if ms.Budget.Denied == 0 {
		t.Errorf("no denial recorded despite truncation")
	}

	// The same samples under a roomy budget: strictly more pool.
	roomy := governedOpts(t.TempDir())
	full := core.New(schematest.Employee(), roomy)
	full.Prepare(employeeSamples())
	if full.PoolSize() <= sys.PoolSize() {
		t.Errorf("tight budget kept %d candidates, roomy %d; expected a strict truncation",
			sys.PoolSize(), full.PoolSize())
	}
}
