package core

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/faults"
	"repro/internal/feedback"
	"repro/internal/ltr"
	"repro/internal/norm"
	"repro/internal/sqlast"
	"repro/internal/sqlparse"
)

// TrainingData is the base corpus a retraining cycle starts from — the
// committed samples and benchmark examples the system was originally
// trained on. Accepted feedback pairs are folded on top of it.
type TrainingData struct {
	Samples  []*sqlast.Query
	Examples []ltr.Example
}

// TrainerConfig tunes the background trainer; the zero value gives
// sensible serving defaults.
type TrainerConfig struct {
	// Interval is the quiet window after a feedback notification before
	// a retraining cycle starts, so a burst of feedback produces one
	// retrain instead of several. Default 30s.
	Interval time.Duration
	// MinRecords is how many not-yet-trained-on records it takes to
	// start a cycle. Default 1.
	MinRecords int
	// Backoff and MaxBackoff bound the jittered exponential delay
	// between retries of a failed cycle. Defaults 2s and 5m.
	Backoff    time.Duration
	MaxBackoff time.Duration
	// ShadowThreshold is how much worse (in top-1 exact-match rate over
	// the shadow evaluation set) the candidate ranker may score and
	// still be promoted. 0 — the default — means "no worse than live";
	// negative values demand strict improvement.
	ShadowThreshold float64
	// ShadowHoldout caps how many of the newest feedback pairs join the
	// base examples in the shadow evaluation set. Default 64.
	ShadowHoldout int
	// RegressWindow and RegressThreshold arm the post-promotion
	// regression detector: over a sliding window of RegressWindow
	// subsequent feedback records, a live top-1 match rate below
	// RegressThreshold rolls the system back to the pre-promotion
	// checkpoint. Defaults 8 and 0.5; a negative threshold disables
	// the detector.
	RegressWindow    int
	RegressThreshold float64
	// Logf, when set, receives one line per cycle outcome. Default:
	// silent.
	Logf func(format string, args ...any)
	// Gate, when set, bounds fleet-wide training concurrency: a cycle
	// calls it before any work and holds the returned release until the
	// cycle ends. An error skips the cycle (it retries with backoff).
	Gate func(ctx context.Context) (release func(), err error)
	// MutateCandidate, when set, edits the freshly trained candidate
	// models before shadow scoring. Fault-injection hook: tests use it
	// to produce a degenerate ranker the gate must reject.
	MutateCandidate func(m *Models)
	// Injector, when set, fires at the faults.Train point of every
	// cycle (after the gate, before any training work).
	Injector *faults.Injector
}

func (cfg *TrainerConfig) fill() {
	if cfg.Interval <= 0 {
		cfg.Interval = 30 * time.Second
	}
	if cfg.MinRecords < 1 {
		cfg.MinRecords = 1
	}
	if cfg.Backoff <= 0 {
		cfg.Backoff = 2 * time.Second
	}
	if cfg.MaxBackoff <= 0 {
		cfg.MaxBackoff = 5 * time.Minute
	}
	if cfg.ShadowHoldout <= 0 {
		cfg.ShadowHoldout = 64
	}
	if cfg.RegressWindow <= 0 {
		cfg.RegressWindow = 8
	}
	if cfg.RegressThreshold == 0 {
		cfg.RegressThreshold = 0.5
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
}

// Trainer states, as reported by TrainerStats.State.
const (
	TrainerIdle       = "idle"
	TrainerTraining   = "training"
	TrainerBackingOff = "backing-off"
)

// ShadowVerdict records one shadow-scoring decision: the live and
// candidate rankers' top-1 exact-match rates over the shadow set, and
// whether the candidate was promoted.
type ShadowVerdict struct {
	Live      float64 `json:"live"`
	Candidate float64 `json:"candidate"`
	Evaluated int     `json:"evaluated"`
	Promoted  bool    `json:"promoted"`
	// Reason is set when the candidate was rejected.
	Reason string `json:"reason,omitempty"`
	// Generation is the pool generation the promotion published.
	Generation uint64 `json:"generation,omitempty"`
	Unix       int64  `json:"unix"`
}

// TrainerStats is a point-in-time snapshot of the trainer's counters,
// surfaced by serving health endpoints.
type TrainerStats struct {
	// State is idle, training or backing-off.
	State string `json:"state"`
	// Retrains counts completed cycles (promoted or shadow-rejected);
	// Failures counts cycles that errored or panicked (each retried
	// with backoff).
	Retrains uint64 `json:"retrains"`
	Failures uint64 `json:"failures"`
	// Promotions and ShadowRejections split completed cycles by the
	// gate's verdict; Rollbacks counts post-promotion regressions that
	// restored the prior generation.
	Promotions       uint64 `json:"promotions"`
	ShadowRejections uint64 `json:"shadow_rejections"`
	Rollbacks        uint64 `json:"rollbacks"`
	// TrainedSeq is the newest feedback sequence number folded into a
	// completed cycle; Pending counts newer records awaiting one.
	TrainedSeq uint64 `json:"trained_seq"`
	Pending    int    `json:"pending"`
	// LastError describes the most recent failure, cleared by the next
	// completed cycle.
	LastError string `json:"last_error,omitempty"`
	// LastShadow is the most recent shadow-scoring verdict.
	LastShadow *ShadowVerdict `json:"last_shadow,omitempty"`
}

// regressState is the armed post-promotion regression detector: a
// sliding window of live top-1 hits over subsequent feedback, plus the
// checkpointed generation to roll back to.
type regressState struct {
	armed   bool
	baseGen uint64
	window  []bool
	hits    int
}

// Trainer is the background retraining loop of the online feedback
// system: it replays the feedback WAL, folds accepted pairs into the
// base corpus, trains a candidate ranker entirely off the serving path
// on a scratch system, shadow-scores it against the live ranker, and
// promotes it only if it is no worse beyond the configured threshold —
// after making sure the pre-promotion state is checkpointed so the
// post-promotion regression detector can roll back. Cycles are
// panic-isolated: a crashing retrain degrades to "keep serving the old
// ranker", never to a dead process.
type Trainer struct {
	sys   *System
	log   *feedback.Log
	store *checkpoint.Store // nil disables rollback arming
	base  func() (TrainingData, error)
	cfg   TrainerConfig

	// notify carries the dirty signal from the feedback endpoint to the
	// training goroutine; capacity 1 makes every send non-blocking and
	// every burst self-coalescing.
	notify chan struct{}

	// trainMu serializes cycles (and rollbacks) between the background
	// loop and Flush, so a shutdown flush cannot interleave with a
	// retry and a rollback cannot interleave with a promotion.
	trainMu sync.Mutex

	mu      sync.Mutex
	stats   TrainerStats
	reg     regressState
	rng     *rand.Rand
	started bool
	cancel  context.CancelFunc
	done    chan struct{}
}

// NewTrainer couples a serving system with its feedback log, base
// corpus and (optionally nil) checkpoint store. Call Start to begin
// background cycles; Flush works with or without Start.
func NewTrainer(sys *System, log *feedback.Log, store *checkpoint.Store, base func() (TrainingData, error), cfg TrainerConfig) *Trainer {
	cfg.fill()
	t := &Trainer{
		sys:    sys,
		log:    log,
		store:  store,
		base:   base,
		cfg:    cfg,
		notify: make(chan struct{}, 1),
		rng:    rand.New(rand.NewSource(sys.Opts.Seed + 0x6662)),
	}
	t.stats.State = TrainerIdle
	return t
}

// Notify marks the feedback log dirty and wakes the trainer. It never
// blocks, so the feedback endpoint can call it inline.
func (t *Trainer) Notify() {
	select {
	case t.notify <- struct{}{}:
	default:
	}
}

// Stats returns a snapshot of the trainer's counters.
func (t *Trainer) Stats() TrainerStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.stats
}

// Start launches the background training loop. A second Start is a
// no-op. A stopped trainer may be started again (an aborted tenant
// eviction does exactly that).
//
//garlint:allow ctxpass -- owns the background goroutine's lifetime:
// the root context lives until Stop, not until any caller returns
func (t *Trainer) Start() {
	t.mu.Lock()
	if t.started {
		t.mu.Unlock()
		return
	}
	t.started = true
	ctx, cancel := context.WithCancel(context.Background())
	t.cancel = cancel
	t.done = make(chan struct{})
	t.mu.Unlock()

	go t.loop(ctx)
}

// Stop halts the background loop, waiting for an in-progress cycle to
// finish. Feedback already on disk is not lost: it trains on the next
// Start (or in another process — the WAL is the source of truth).
func (t *Trainer) Stop() {
	t.mu.Lock()
	if !t.started {
		t.mu.Unlock()
		return
	}
	t.started = false
	cancel, done := t.cancel, t.done
	t.mu.Unlock()

	cancel()
	<-done
}

// Shutdown stops the background loop and synchronously runs one final
// cycle over any pending feedback, bounded by ctx — the graceful-
// shutdown sequence in one call. Pending feedback that does not make
// the window is not lost: the WAL is the source of truth and the next
// process trains on it.
func (t *Trainer) Shutdown(ctx context.Context) error {
	t.Stop()
	return t.Flush(ctx)
}

// Flush synchronously runs one retraining cycle if enough feedback is
// pending, retrying with backoff until it completes or ctx ends. A log
// with nothing new trains trivially.
func (t *Trainer) Flush(ctx context.Context) error {
	backoff := t.cfg.Backoff
	for {
		err := t.retrainOnce(ctx)
		if err == nil {
			return nil
		}
		select {
		case <-ctx.Done():
			return err
		case <-time.After(t.jitter(backoff)):
		}
		backoff = min(backoff*2, t.cfg.MaxBackoff)
	}
}

// loop is the background trainer: wait dirty → coalesce → retrain,
// with jittered exponential backoff on failure. Feedback arriving
// while a cycle (or backoff) is in progress re-arms the loop, so the
// newest records always end up trained on.
func (t *Trainer) loop(ctx context.Context) {
	defer close(t.done)
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.notify:
		}
		// Coalesce: let the feedback burst settle so one cycle covers
		// it whole.
		select {
		case <-ctx.Done():
			return
		case <-time.After(t.cfg.Interval):
		}
		// Absorb everything that arrived during the window: the replay
		// below reads the log's newest state, covering them all.
		select {
		case <-t.notify:
		default:
		}

		backoff := t.cfg.Backoff
		for {
			err := t.retrainOnce(ctx)
			if err == nil {
				break
			}
			t.setState(TrainerBackingOff)
			t.cfg.Logf("trainer: cycle failed (retrying in ~%s): %v", backoff, err)
			select {
			case <-ctx.Done():
				return
			case <-time.After(t.jitter(backoff)):
			}
			backoff = min(backoff*2, t.cfg.MaxBackoff)
		}
	}
}

func (t *Trainer) setState(state string) {
	t.mu.Lock()
	t.stats.State = state
	t.mu.Unlock()
}

// retrainOnce replays the log and, if enough new feedback is pending,
// runs one panic-isolated cycle. Serialized against concurrent
// Flush/loop cycles and rollbacks.
func (t *Trainer) retrainOnce(ctx context.Context) error {
	t.trainMu.Lock()
	defer t.trainMu.Unlock()

	records, err := t.log.Records()
	if err != nil {
		t.mu.Lock()
		t.stats.Failures++
		t.stats.LastError = err.Error()
		t.mu.Unlock()
		return err
	}
	t.mu.Lock()
	trained := t.stats.TrainedSeq
	pending := 0
	for _, rec := range records {
		if rec.Seq > trained {
			pending++
		}
	}
	t.stats.Pending = pending
	t.mu.Unlock()
	if pending < t.cfg.MinRecords {
		return nil
	}

	t.setState(TrainerTraining)
	err = t.cycle(ctx, records)
	t.setState(TrainerIdle)

	t.mu.Lock()
	defer t.mu.Unlock()
	if err != nil {
		t.stats.Failures++
		t.stats.LastError = err.Error()
		return err
	}
	t.stats.Retrains++
	t.stats.LastError = ""
	if n := len(records); n > 0 && records[n-1].Seq > t.stats.TrainedSeq {
		t.stats.TrainedSeq = records[n-1].Seq
	}
	t.stats.Pending = 0
	return nil
}

// cycle is one complete retraining attempt: gate, fold, train on a
// scratch system, shadow-score, and promote or reject. Any panic in
// here — a training crash on hostile feedback, a bug in the fold — is
// converted to an error: the serving snapshot is untouched until the
// final promotion step, which publishes atomically.
func (t *Trainer) cycle(ctx context.Context, records []feedback.Record) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("core: training cycle panic: %v", r)
		}
	}()
	if t.cfg.Gate != nil {
		release, gerr := t.cfg.Gate(ctx)
		if gerr != nil {
			return fmt.Errorf("core: training budget: %w", gerr)
		}
		defer release()
	}
	if ferr := t.cfg.Injector.Fire(ctx, faults.Train); ferr != nil {
		return ferr
	}

	base, err := t.base()
	if err != nil {
		return fmt.Errorf("core: loading base training data: %w", err)
	}
	samples, examples, pairs := foldFeedback(t.sys, base, records)
	if len(samples) == 0 {
		return fmt.Errorf("core: retraining with no samples")
	}

	// Train the candidate entirely off the serving path: a scratch
	// system over the same database builds its own pool and models.
	// The live snapshot keeps serving untouched throughout.
	scratch := New(t.sys.DB, t.sys.Opts)
	scratch.Prepare(samples)
	models, terr := TrainModels([]TrainingSet{{Sys: scratch, Examples: examples}}, t.sys.Opts)
	if terr != nil {
		return terr
	}
	if t.cfg.MutateCandidate != nil {
		t.cfg.MutateCandidate(models)
	}
	if uerr := scratch.UseModels(models); uerr != nil {
		return uerr
	}

	// Shadow scoring: A/B the live and candidate rankers on the base
	// examples plus a holdout of the newest feedback.
	evalSet := shadowEvalSet(base.Examples, pairs, t.cfg.ShadowHoldout)
	verdict := ShadowVerdict{
		Live:      scoreTop1(ctx, t.sys, evalSet),
		Candidate: scoreTop1(ctx, scratch, evalSet),
		Evaluated: len(evalSet),
		Unix:      time.Now().Unix(),
	}
	if verdict.Candidate < verdict.Live-t.cfg.ShadowThreshold {
		verdict.Reason = fmt.Sprintf("candidate top-1 %.3f vs live %.3f (threshold %.3f)",
			verdict.Candidate, verdict.Live, t.cfg.ShadowThreshold)
		t.mu.Lock()
		t.stats.ShadowRejections++
		t.stats.LastShadow = &verdict
		t.mu.Unlock()
		t.cfg.Logf("trainer: shadow gate rejected candidate: %s", verdict.Reason)
		return nil
	}

	// Rollback point: before promoting, make sure the pre-promotion
	// generation is durable. Promotion without a rollback point is
	// refused when a store is configured — safety beats freshness.
	var baseGen uint64
	canRollback := false
	if t.store != nil && t.cfg.RegressThreshold > 0 {
		m, sections, xerr := t.sys.ExportCheckpoint()
		switch {
		case xerr == nil:
			baseGen = m.Generation
			if _, rerr := t.store.ReadGeneration(baseGen); rerr != nil {
				if werr := t.store.Write(m, sections); werr != nil {
					return fmt.Errorf("core: checkpointing rollback point: %w", werr)
				}
			}
			canRollback = true
		case errors.Is(xerr, ErrNotReady):
			// Nothing to roll back to; promote unarmed.
		default:
			return xerr
		}
	}

	gen, aerr := t.sys.adoptSnapshot(scratch)
	if aerr != nil {
		return aerr
	}
	verdict.Promoted = true
	verdict.Generation = gen
	t.mu.Lock()
	t.stats.Promotions++
	t.stats.LastShadow = &verdict
	t.reg = regressState{armed: canRollback, baseGen: baseGen}
	t.mu.Unlock()
	t.cfg.Logf("trainer: promoted generation %d (candidate top-1 %.3f vs live %.3f over %d queries, %d feedback pairs)",
		gen, verdict.Candidate, verdict.Live, verdict.Evaluated, len(pairs))
	return nil
}

// foldFeedback merges the accepted feedback pairs into the base
// corpus, deduplicating samples by bound canonical SQL and examples by
// (question, bound canonical SQL) — so replaying the same log twice
// yields an identical sample set. Keys are computed through BindGold
// because binding qualifies names: an unbound base sample and its
// bound feedback twin must collide. It returns the merged samples, the
// merged examples, and the feedback-only pairs in log order.
func foldFeedback(sys *System, base TrainingData, records []feedback.Record) ([]*sqlast.Query, []ltr.Example, []ltr.Example) {
	samples := append([]*sqlast.Query(nil), base.Samples...)
	seenSQL := make(map[string]bool, len(samples))
	for _, q := range samples {
		seenSQL[sys.BindGold(q).String()] = true
	}
	examples := append([]ltr.Example(nil), base.Examples...)
	seenEx := make(map[string]bool, len(examples))
	for _, ex := range examples {
		if ex.Gold != nil {
			seenEx[ex.NL+"\x00"+sys.BindGold(ex.Gold).String()] = true
		}
	}
	var pairs []ltr.Example
	for _, rec := range records {
		q, err := sqlparse.Parse(rec.SQL)
		if err != nil {
			continue // validated at accept time; a WAL from elsewhere may differ
		}
		if err := sys.DB.Bind(q); err != nil {
			continue
		}
		printed := q.String()
		if !seenSQL[printed] {
			seenSQL[printed] = true
			samples = append(samples, q)
		}
		key := rec.Question + "\x00" + printed
		if !seenEx[key] {
			seenEx[key] = true
			ex := ltr.Example{NL: rec.Question, Gold: q}
			examples = append(examples, ex)
			pairs = append(pairs, ex)
		}
	}
	return samples, examples, pairs
}

// shadowEvalSet is the held-out replay: every base example plus the
// newest (at most holdout) feedback pairs.
func shadowEvalSet(baseEx, pairs []ltr.Example, holdout int) []ltr.Example {
	if len(pairs) > holdout {
		pairs = pairs[len(pairs)-holdout:]
	}
	out := make([]ltr.Example, 0, len(baseEx)+len(pairs))
	out = append(out, baseEx...)
	return append(out, pairs...)
}

// scoreTop1 is the shadow scorer: the fraction of examples whose top-1
// translation exactly matches the gold under SPIDER normalization.
func scoreTop1(ctx context.Context, sys *System, examples []ltr.Example) float64 {
	if len(examples) == 0 {
		return 0
	}
	hits := 0
	for _, ex := range examples {
		tr, err := sys.TranslateContext(ctx, ex.NL)
		if err != nil || tr.Top == nil {
			continue
		}
		if norm.ExactMatch(tr.Top.SQL, sys.BindGold(ex.Gold)) {
			hits++
		}
	}
	return float64(hits) / float64(len(examples))
}

// adoptSnapshot publishes the donor system's trained snapshot — pool,
// index, models, pipeline, prep stats — into s under a new generation,
// keeping s's own value linker and fault injector. The candidate was
// built and indexed on the donor, so promotion costs one pointer swap
// instead of a second pool build; like Swap, there is no intermediate
// untrained window. Returns the new generation.
func (s *System) adoptSnapshot(donor *System) (uint64, error) {
	src := donor.state.Load()
	if !src.trained || src.pipeline == nil || len(src.pool) == 0 {
		return 0, ErrNotReady
	}
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	next := *s.state.Load()
	next.gen++
	next.pool = src.pool
	next.poolIdx = src.poolIdx
	next.prepStats = src.prepStats
	next.encoder = src.encoder
	next.pipeline = src.pipeline
	next.trained = true
	s.publish(&next)
	s.purgeCaches()
	return next.gen, nil
}

// ObserveFeedback feeds one accepted record to the post-promotion
// regression detector. While armed (after a promotion, until the
// window settles or a rollback fires), the live system translates the
// record's question and the top-1 hit/miss against the endorsed SQL
// slides through the window; a full window below the regression
// threshold triggers an automatic rollback to the pre-promotion
// checkpoint. Disarmed, it is a no-op — the cost is only paid in the
// probation window right after a promotion.
//
//garlint:allow goexit -- the rollback goroutine is deliberately
// detached: it must not block (or die with) the request that revealed
// the regression; it is serialized by trainMu, panic-isolated, bounded
// by one checkpoint read+restore, and observable via Stats().Rollbacks
func (t *Trainer) ObserveFeedback(ctx context.Context, rec feedback.Record) {
	t.mu.Lock()
	armed := t.reg.armed
	t.mu.Unlock()
	if !armed {
		return
	}
	gold, err := sqlparse.Parse(rec.SQL)
	if err != nil {
		return
	}
	match := false
	if tr, terr := t.sys.TranslateContext(ctx, rec.Question); terr == nil && tr.Top != nil {
		match = norm.ExactMatch(tr.Top.SQL, t.sys.BindGold(gold))
	}

	t.mu.Lock()
	if !t.reg.armed { // disarmed while we were translating
		t.mu.Unlock()
		return
	}
	t.reg.window = append(t.reg.window, match)
	if match {
		t.reg.hits++
	}
	if len(t.reg.window) > t.cfg.RegressWindow {
		if t.reg.window[0] {
			t.reg.hits--
		}
		t.reg.window = t.reg.window[1:]
	}
	full := len(t.reg.window) >= t.cfg.RegressWindow
	rate := float64(t.reg.hits) / float64(len(t.reg.window))
	baseGen := t.reg.baseGen
	trigger := full && rate < t.cfg.RegressThreshold
	if trigger {
		t.reg = regressState{} // disarm before the rollback runs
	}
	t.mu.Unlock()

	if trigger {
		go t.rollback(baseGen, rate)
	}
}

// rollback restores the checkpointed pre-promotion generation via the
// standard recovery machinery. Serving is uninterrupted: translations
// keep reading the demoted snapshot until the restore publishes.
func (t *Trainer) rollback(gen uint64, rate float64) {
	t.trainMu.Lock()
	defer t.trainMu.Unlock()
	err := t.restore(gen)
	t.mu.Lock()
	defer t.mu.Unlock()
	if err != nil {
		t.stats.LastError = err.Error()
		t.cfg.Logf("trainer: rollback to generation %d failed: %v", gen, err)
		return
	}
	t.stats.Rollbacks++
	t.cfg.Logf("trainer: post-promotion regression (window top-1 %.2f): rolled back to generation %d", rate, gen)
}

// restore reads and re-publishes one checkpointed generation,
// panic-isolated like every other background path of the trainer.
func (t *Trainer) restore(gen uint64) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("core: rollback panic: %v", r)
		}
	}()
	ck, err := t.store.ReadGeneration(gen)
	if err != nil {
		return err
	}
	return t.sys.RestoreCheckpoint(ck)
}

// jitter spreads a delay over [d/2, d) so synchronized retry storms
// decorrelate.
func (t *Trainer) jitter(d time.Duration) time.Duration {
	t.mu.Lock()
	defer t.mu.Unlock()
	half := d / 2
	return half + time.Duration(t.rng.Int63n(int64(half)+1))
}
