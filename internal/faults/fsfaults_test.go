package faults

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"
)

func TestFireDataNilAndUnplanned(t *testing.T) {
	buf := []byte("checkpoint bytes")
	var nilInj *Injector
	if out, err := nilInj.FireData(FSWrite, buf); err != nil || !bytes.Equal(out, buf) {
		t.Fatalf("nil injector mutated the buffer: %q, %v", out, err)
	}
	in := NewInjector(1)
	out, err := in.FireData(FSWrite, buf)
	if err != nil || !bytes.Equal(out, buf) {
		t.Fatalf("unplanned stage mutated the buffer: %q, %v", out, err)
	}
	if in.Calls(FSWrite) != 1 || in.Fired(FSWrite) != 0 {
		t.Fatalf("call accounting wrong: calls=%d fired=%d", in.Calls(FSWrite), in.Fired(FSWrite))
	}
}

func TestFireDataShortWrite(t *testing.T) {
	buf := []byte("0123456789")
	in := NewInjector(1)
	in.Inject(FSWrite, Plan{Kind: KindShortWrite, Bytes: 4})
	out, err := in.FireData(FSWrite, buf)
	if err == nil {
		t.Fatal("short write did not fail the operation")
	}
	if !bytes.Equal(out, buf[:4]) {
		t.Fatalf("short write prefix = %q, want %q", out, buf[:4])
	}
	if !strings.Contains(err.Error(), "short write") {
		t.Fatalf("error does not identify the fault: %v", err)
	}

	// Bytes is clamped to the buffer, and a wrapped error surfaces.
	sentinel := errors.New("disk full")
	in2 := NewInjector(1)
	in2.Inject(FSWrite, Plan{Kind: KindShortWrite, Bytes: 99, Err: sentinel})
	out, err = in2.FireData(FSWrite, buf)
	if !bytes.Equal(out, buf) {
		t.Fatalf("clamped prefix = %q, want full buffer", out)
	}
	if !errors.Is(err, sentinel) {
		t.Fatalf("wrapped error lost: %v", err)
	}
}

func TestFireDataBitFlip(t *testing.T) {
	buf := []byte("0123456789")
	in := NewInjector(1)
	in.Inject(FSWrite, Plan{Kind: KindBitFlip, Offset: 13})
	out, err := in.FireData(FSWrite, buf)
	if err != nil {
		t.Fatalf("bit flip must let the operation succeed: %v", err)
	}
	if bytes.Equal(out, buf) {
		t.Fatal("no bit was flipped")
	}
	if bytes.Equal(buf, []byte("0123456789")) == false {
		t.Fatal("input buffer was mutated in place")
	}
	diff := 0
	for i := range buf {
		diff += bytesBitDiff(buf[i], out[i])
	}
	if diff != 1 {
		t.Fatalf("flipped %d bits, want exactly 1", diff)
	}
	// An empty buffer has nothing to corrupt and must not panic.
	if out, err := in.FireData(FSWrite, nil); err != nil || len(out) != 0 {
		t.Fatalf("empty buffer: %q, %v", out, err)
	}
}

func bytesBitDiff(a, b byte) int {
	x, n := a^b, 0
	for x != 0 {
		n += int(x & 1)
		x >>= 1
	}
	return n
}

func TestFireDataErrorFailsBeforeWriting(t *testing.T) {
	in := NewInjector(1)
	sentinel := errors.New("boom")
	in.Fail(FSSync, sentinel)
	out, err := in.FireData(FSSync, []byte("abc"))
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want sentinel", err)
	}
	if len(out) != 0 {
		t.Fatalf("error kind let %d bytes through", len(out))
	}
}

func TestFireDataPanicAndTimeKinds(t *testing.T) {
	in := NewInjector(1)
	in.Panic(FSWrite, "torn world")
	func() {
		defer func() {
			if r := recover(); r == nil {
				t.Error("panic plan did not panic at a data point")
			}
		}()
		_, _ = in.FireData(FSWrite, []byte("x"))
	}()

	// Delay/block kinds are meaningless at a data point: no-op, no hang.
	in2 := NewInjector(1)
	in2.Inject(FSWrite, Plan{Kind: KindBlock, Until: make(chan struct{})})
	if out, err := in2.FireData(FSWrite, []byte("x")); err != nil || string(out) != "x" {
		t.Fatalf("block kind at data point: %q, %v", out, err)
	}
}

func TestFireDataSharesPlanSelection(t *testing.T) {
	// After/Times/P selection is the same machinery as Fire: a plan that
	// skips the first call and fires once behaves identically here.
	in := NewInjector(1)
	in.Inject(FSWrite, Plan{Kind: KindBitFlip, After: 1, Times: 1})
	buf := []byte("abcdef")
	if out, _ := in.FireData(FSWrite, buf); !bytes.Equal(out, buf) {
		t.Fatal("plan fired before After")
	}
	if out, _ := in.FireData(FSWrite, buf); bytes.Equal(out, buf) {
		t.Fatal("plan did not fire after After")
	}
	if out, _ := in.FireData(FSWrite, buf); !bytes.Equal(out, buf) {
		t.Fatal("plan fired past Times")
	}
	if in.Fired(FSWrite) != 1 {
		t.Fatalf("fired = %d, want 1", in.Fired(FSWrite))
	}
}

// TestFireDataEdgeClamps pins the defensive clamps: negative Bytes and
// Offset are tolerated, a data-point error with no configured Err still
// names the stage, and a plan with no panic message gets the default.
func TestFireDataEdgeClamps(t *testing.T) {
	// Negative Bytes clamps to an empty prefix.
	in := NewInjector(1)
	in.Inject(FSWrite, Plan{Kind: KindShortWrite, Bytes: -5})
	out, err := in.FireData(FSWrite, []byte("abc"))
	if err == nil || len(out) != 0 {
		t.Fatalf("negative Bytes: %q, %v", out, err)
	}

	// Negative Offset flips a bit anyway (magnitude is used).
	in2 := NewInjector(1)
	in2.Inject(FSWrite, Plan{Kind: KindBitFlip, Offset: -9})
	buf := []byte("abc")
	out, err = in2.FireData(FSWrite, buf)
	if err != nil || bytes.Equal(out, buf) {
		t.Fatalf("negative Offset did not corrupt: %q, %v", out, err)
	}

	// KindError with no Err still produces a stage-naming message.
	in3 := NewInjector(1)
	in3.Inject(FSSync, Plan{Kind: KindError})
	if _, err := in3.FireData(FSSync, []byte("x")); err == nil || !strings.Contains(err.Error(), string(FSSync)) {
		t.Fatalf("default error does not name the stage: %v", err)
	}

	// A panic plan with no message panics with the default.
	in4 := NewInjector(1)
	in4.Inject(FSWrite, Plan{Kind: KindPanic})
	func() {
		defer func() {
			r := recover()
			if r == nil || !strings.Contains(fmt.Sprint(r), "injected panic") {
				t.Errorf("default panic message missing: %v", r)
			}
		}()
		_, _ = in4.FireData(FSWrite, []byte("x"))
	}()
}

// TestFireEdgeBranches covers the same defaults on the non-data Fire
// path: default panic message, and a delay cut short by a dead context.
func TestFireEdgeBranches(t *testing.T) {
	in := NewInjector(1)
	in.Inject(FSWrite, Plan{Kind: KindPanic})
	func() {
		defer func() {
			r := recover()
			if r == nil || !strings.Contains(fmt.Sprint(r), "injected panic") {
				t.Errorf("default panic message missing: %v", r)
			}
		}()
		_ = in.Fire(context.Background(), FSWrite)
	}()

	in2 := NewInjector(1)
	in2.Inject(FSSync, Plan{Kind: KindDelay, Delay: time.Hour})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := in2.Fire(ctx, FSSync); !errors.Is(err, context.Canceled) {
		t.Fatalf("delay under dead context: %v", err)
	}
}
