package faults

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestNilInjectorIsNoop(t *testing.T) {
	var in *Injector
	if err := in.Fire(context.Background(), Retrieval); err != nil {
		t.Fatalf("nil injector fired: %v", err)
	}
	if in.Calls(Retrieval) != 0 || in.Fired(Retrieval) != 0 {
		t.Fatal("nil injector counted")
	}
}

func TestErrorPlan(t *testing.T) {
	want := errors.New("boom")
	in := NewInjector(1).Fail(Rerank, want)
	if err := in.Fire(context.Background(), Rerank); !errors.Is(err, want) {
		t.Fatalf("got %v, want %v", err, want)
	}
	if err := in.Fire(context.Background(), Retrieval); err != nil {
		t.Fatalf("unplanned stage fired: %v", err)
	}
	if in.Fired(Rerank) != 1 || in.Calls(Rerank) != 1 {
		t.Fatalf("counts: fired=%d calls=%d", in.Fired(Rerank), in.Calls(Rerank))
	}
}

func TestPanicPlan(t *testing.T) {
	in := NewInjector(1).Panic(Postprocess, "injected")
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	_ = in.Fire(context.Background(), Postprocess)
}

func TestDelayPlanHonorsContext(t *testing.T) {
	in := NewInjector(1).Delay(Retrieval, time.Hour)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := in.Fire(ctx, Retrieval)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("got %v, want deadline exceeded", err)
	}
	if time.Since(start) > time.Second {
		t.Fatal("delay ignored the context")
	}
}

func TestAfterAndTimes(t *testing.T) {
	in := NewInjector(1).Inject(Rerank, Plan{Kind: KindError, After: 2, Times: 1})
	ctx := context.Background()
	for i := 0; i < 2; i++ {
		if err := in.Fire(ctx, Rerank); err != nil {
			t.Fatalf("fired during After window (call %d): %v", i, err)
		}
	}
	if err := in.Fire(ctx, Rerank); err == nil {
		t.Fatal("did not fire after the After window")
	}
	if err := in.Fire(ctx, Rerank); err != nil {
		t.Fatalf("fired beyond Times cap: %v", err)
	}
}

func TestProbabilisticPlanIsSeeded(t *testing.T) {
	schedule := func(seed int64) []bool {
		in := NewInjector(seed).Inject(Retrieval, Plan{Kind: KindError, P: 0.5})
		out := make([]bool, 40)
		for i := range out {
			out[i] = in.Fire(context.Background(), Retrieval) != nil
		}
		return out
	}
	a, b := schedule(7), schedule(7)
	fired := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different schedules")
		}
		if a[i] {
			fired++
		}
	}
	if fired == 0 || fired == len(a) {
		t.Fatalf("P=0.5 fired %d/%d times", fired, len(a))
	}
}

// TestBlockGate: a Block plan parks callers until released; a caller
// whose context ends first unparks with the context error.
func TestBlockGate(t *testing.T) {
	in := NewInjector(1)
	release := in.Block(Retrieval)

	const parked = 3
	done := make(chan error, parked)
	for i := 0; i < parked; i++ {
		go func() { done <- in.Fire(context.Background(), Retrieval) }()
	}
	// All callers reach the gate and none get through before release.
	deadline := time.Now().Add(2 * time.Second)
	for in.Calls(Retrieval) < parked && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := in.Calls(Retrieval); got != parked {
		t.Fatalf("%d callers reached the gate, want %d", got, parked)
	}
	select {
	case err := <-done:
		t.Fatalf("caller passed a held gate: %v", err)
	case <-time.After(20 * time.Millisecond):
	}

	release()
	release() // idempotent
	for i := 0; i < parked; i++ {
		if err := <-done; err != nil {
			t.Fatalf("released caller got error: %v", err)
		}
	}
	// After release the gate stays open.
	if err := in.Fire(context.Background(), Retrieval); err != nil {
		t.Fatalf("gate did not stay open: %v", err)
	}

	// A fresh gate respects context cancellation.
	in2 := NewInjector(1)
	defer in2.Block(Rerank)()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if err := in2.Fire(ctx, Rerank); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("blocked caller with expired context: %v", err)
	}
}
