// Package faults is a deterministic fault injector for the translation
// path and the durable-state path. Tests (and soak harnesses) register
// per-stage plans — inject an error, a panic, or a delay at the
// retrieval, re-ranking or value post-processing boundary, or a short
// write, bit flip, fsync error or rename failure at the filesystem
// points of a checkpoint write — and the instrumented code fires the
// injector at each point. Probabilistic plans draw from a seeded RNG,
// so a given seed always produces the same fault schedule.
//
// The zero of everything is safe: a nil *Injector never fires, and a
// stage with no plan is a no-op.
package faults

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// Stage names one boundary of the translation pipeline.
type Stage string

// The three online stages of GAR's translation path, in order. Later
// stages refine an answer the earlier stage already produced, which is
// what makes stage-level degradation possible.
const (
	Retrieval   Stage = "retrieval"
	Rerank      Stage = "rerank"
	Postprocess Stage = "postprocess"
)

// ExecGuide is the execution-guided reranking boundary, fired after
// value post-processing when Options.ExecGuide is on. Like rerank and
// postprocess it is non-fatal: a fault here must degrade to the
// pre-execution LTR order.
const ExecGuide Stage = "execguide"

// The filesystem fault points of a durable checkpoint write, in write
// order. FSWrite is a data point (fired through FireData, so plans can
// truncate or corrupt the pending buffer); FSSync and FSRename are
// plain error points fired before the fsync and the atomic rename.
const (
	FSWrite  Stage = "fs.write"
	FSSync   Stage = "fs.sync"
	FSRename Stage = "fs.rename"
)

// FSRead is the data fault point of a durable-state read — fired with
// each spill frame's payload as it comes off disk, before the checksum
// is verified. Bit-flip plans model media rot the CRC must catch;
// error plans model a failing disk mid-merge. Like the write points it
// is exercised through FireData.
const FSRead Stage = "fs.read"

// Train is the fault point of a background retraining cycle, fired
// after the trainer claims its budget slot and before any training
// work. A panic plan here proves the trainer's isolation boundary: a
// crashing cycle must degrade to "keep serving the old ranker".
const Train Stage = "train"

// Kind selects what a Plan injects when it fires.
type Kind int

const (
	// KindError makes Fire return the plan's error.
	KindError Kind = iota
	// KindPanic makes Fire panic with the plan's message.
	KindPanic
	// KindDelay makes Fire sleep for the plan's duration (or until the
	// context is done, in which case Fire returns the context error).
	KindDelay
	// KindBlock makes Fire park the caller until the plan's Until
	// channel is closed (or the context is done). Burst and admission
	// tests use it to hold requests in-flight deterministically.
	KindBlock
	// KindShortWrite truncates the pending buffer of a data fault point
	// (FireData) to the plan's Bytes prefix and fails the operation:
	// the caller writes the prefix, then sees the error — exactly what
	// a crash or a full disk mid-write leaves on disk.
	KindShortWrite
	// KindBitFlip flips one bit of the pending buffer of a data fault
	// point (selected by the plan's Offset) and lets the operation
	// succeed, modeling silent media corruption that only a checksum
	// can catch.
	KindBitFlip
)

// Plan describes one fault to inject at a stage boundary.
type Plan struct {
	Kind Kind
	// Err is returned by KindError plans (defaults to a generic error).
	Err error
	// Message is the panic value of KindPanic plans.
	Message string
	// Delay is how long KindDelay plans block.
	Delay time.Duration
	// Until releases KindBlock plans when closed.
	Until <-chan struct{}
	// After skips the first After eligible calls before firing.
	After int
	// Times caps how often the plan fires; 0 means no cap.
	Times int
	// P is the probability of firing on an eligible call, drawn from
	// the injector's seeded RNG; outside (0,1) the plan always fires.
	P float64
	// Bytes is the prefix KindShortWrite plans let through before
	// failing, clamped to the buffer length.
	Bytes int
	// Offset selects the corrupted bit of KindBitFlip plans: byte
	// Offset modulo the buffer length, bit Offset modulo 8.
	Offset int
}

type planState struct {
	Plan
	calls int // eligible calls seen
	fired int
}

// Injector holds per-stage fault plans. It is safe for concurrent use.
type Injector struct {
	mu    sync.Mutex
	rng   *rand.Rand
	plans map[Stage][]*planState
	calls map[Stage]int
	fired map[Stage]int
}

// NewInjector creates an empty injector; seed drives probabilistic
// plans.
func NewInjector(seed int64) *Injector {
	return &Injector{
		rng:   rand.New(rand.NewSource(seed)),
		plans: map[Stage][]*planState{},
		calls: map[Stage]int{},
		fired: map[Stage]int{},
	}
}

// Inject registers a plan at a stage. Multiple plans on one stage fire
// in registration order; the first that triggers wins the call.
func (in *Injector) Inject(stage Stage, p Plan) *Injector {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.plans[stage] = append(in.plans[stage], &planState{Plan: p})
	return in
}

// Fail is shorthand for an always-on error plan.
func (in *Injector) Fail(stage Stage, err error) *Injector {
	return in.Inject(stage, Plan{Kind: KindError, Err: err})
}

// Panic is shorthand for an always-on panic plan.
func (in *Injector) Panic(stage Stage, message string) *Injector {
	return in.Inject(stage, Plan{Kind: KindPanic, Message: message})
}

// Delay is shorthand for an always-on delay plan.
func (in *Injector) Delay(stage Stage, d time.Duration) *Injector {
	return in.Inject(stage, Plan{Kind: KindDelay, Delay: d})
}

// Block registers an always-on gate at the stage: every caller reaching
// the stage parks until the returned release function is invoked (it is
// idempotent). Callers whose context ends first unpark with the context
// error. Deterministic saturation for burst tests: admit N requests,
// wait for them to park, observe the system's behavior, then release.
func (in *Injector) Block(stage Stage) (release func()) {
	ch := make(chan struct{})
	in.Inject(stage, Plan{Kind: KindBlock, Until: ch})
	var once sync.Once
	return func() { once.Do(func() { close(ch) }) }
}

// choose records the call and picks the first triggering plan for the
// stage, or nil.
func (in *Injector) choose(stage Stage) *planState {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.calls[stage]++
	for _, ps := range in.plans[stage] {
		ps.calls++
		if ps.calls <= ps.After {
			continue
		}
		if ps.Times > 0 && ps.fired >= ps.Times {
			continue
		}
		if ps.P > 0 && ps.P < 1 && in.rng.Float64() >= ps.P {
			continue
		}
		ps.fired++
		in.fired[stage]++
		return ps
	}
	return nil
}

// Fire is called by the pipeline at a stage boundary. It executes the
// first triggering plan: returning an error, panicking, or sleeping.
// A nil receiver or an unplanned stage is a no-op returning nil.
// Data-only kinds (short write, bit flip) degrade to plain errors at a
// non-data point — a fault point without a buffer cannot corrupt one,
// but the fault must not pass silently.
func (in *Injector) Fire(ctx context.Context, stage Stage) error {
	if in == nil {
		return nil
	}
	chosen := in.choose(stage)
	if chosen == nil {
		return nil
	}
	switch chosen.Kind {
	case KindPanic:
		msg := chosen.Message
		if msg == "" {
			msg = "injected panic"
		}
		panic(fmt.Sprintf("faults: %s: %s", stage, msg))
	case KindDelay:
		t := time.NewTimer(chosen.Delay)
		defer t.Stop()
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-t.C:
			return nil
		}
	case KindBlock:
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-chosen.Until:
			return nil
		}
	default: // KindError, and data-only kinds at a non-data point
		if chosen.Err != nil {
			return chosen.Err
		}
		return fmt.Errorf("faults: injected error at %s", stage)
	}
}

// FireData is Fire for fault points that carry a pending byte buffer —
// the filesystem write of a checkpoint. The returned slice is what the
// caller must actually hand to the operation, and the returned error is
// what the operation must report after consuming it:
//
//   - KindShortWrite returns the plan's Bytes-long prefix and an error:
//     the caller writes the prefix, then fails, leaving a torn buffer
//     behind exactly as a crash mid-write would;
//   - KindBitFlip returns the buffer with one bit flipped and no error:
//     the write "succeeds" and only a checksum can tell;
//   - KindError fails before anything is written (empty buffer);
//   - KindPanic panics as usual.
//
// Time-based kinds (delay, block) are not meaningful at a data point
// and degrade to an immediate no-op. The input slice is never mutated;
// corrupting kinds return a copy. A nil receiver or an unplanned stage
// returns the buffer unchanged.
func (in *Injector) FireData(stage Stage, data []byte) ([]byte, error) {
	if in == nil {
		return data, nil
	}
	chosen := in.choose(stage)
	if chosen == nil {
		return data, nil
	}
	planErr := func() error {
		if chosen.Err != nil {
			return chosen.Err
		}
		return fmt.Errorf("faults: injected error at %s", stage)
	}
	switch chosen.Kind {
	case KindPanic:
		msg := chosen.Message
		if msg == "" {
			msg = "injected panic"
		}
		panic(fmt.Sprintf("faults: %s: %s", stage, msg))
	case KindShortWrite:
		n := chosen.Bytes
		if n < 0 {
			n = 0
		}
		if n > len(data) {
			n = len(data)
		}
		if chosen.Err != nil {
			return data[:n], fmt.Errorf("faults: injected short write at %s (%d of %d bytes): %w",
				stage, n, len(data), chosen.Err)
		}
		return data[:n], fmt.Errorf("faults: injected short write at %s (%d of %d bytes)", stage, n, len(data))
	case KindBitFlip:
		if len(data) == 0 {
			return data, nil
		}
		off := chosen.Offset
		if off < 0 {
			off = -off
		}
		corrupted := append([]byte(nil), data...)
		corrupted[off%len(data)] ^= 1 << (off % 8)
		return corrupted, nil
	case KindError:
		return data[:0], planErr()
	default: // KindDelay, KindBlock: no context at a data point
		return data, nil
	}
}

// Calls reports how often Fire was invoked for the stage.
func (in *Injector) Calls(stage Stage) int {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.calls[stage]
}

// Fired reports how often any plan actually triggered at the stage.
func (in *Injector) Fired(stage Stage) int {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.fired[stage]
}
