// Package faults is a deterministic fault injector for the translation
// path. Tests (and soak harnesses) register per-stage plans — inject an
// error, a panic, or a delay at the retrieval, re-ranking or value
// post-processing boundary — and the core pipeline fires the injector at
// the top of each stage. Probabilistic plans draw from a seeded RNG, so
// a given seed always produces the same fault schedule.
//
// The zero of everything is safe: a nil *Injector never fires, and a
// stage with no plan is a no-op.
package faults

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// Stage names one boundary of the translation pipeline.
type Stage string

// The three online stages of GAR's translation path, in order. Later
// stages refine an answer the earlier stage already produced, which is
// what makes stage-level degradation possible.
const (
	Retrieval   Stage = "retrieval"
	Rerank      Stage = "rerank"
	Postprocess Stage = "postprocess"
)

// Kind selects what a Plan injects when it fires.
type Kind int

const (
	// KindError makes Fire return the plan's error.
	KindError Kind = iota
	// KindPanic makes Fire panic with the plan's message.
	KindPanic
	// KindDelay makes Fire sleep for the plan's duration (or until the
	// context is done, in which case Fire returns the context error).
	KindDelay
	// KindBlock makes Fire park the caller until the plan's Until
	// channel is closed (or the context is done). Burst and admission
	// tests use it to hold requests in-flight deterministically.
	KindBlock
)

// Plan describes one fault to inject at a stage boundary.
type Plan struct {
	Kind Kind
	// Err is returned by KindError plans (defaults to a generic error).
	Err error
	// Message is the panic value of KindPanic plans.
	Message string
	// Delay is how long KindDelay plans block.
	Delay time.Duration
	// Until releases KindBlock plans when closed.
	Until <-chan struct{}
	// After skips the first After eligible calls before firing.
	After int
	// Times caps how often the plan fires; 0 means no cap.
	Times int
	// P is the probability of firing on an eligible call, drawn from
	// the injector's seeded RNG; outside (0,1) the plan always fires.
	P float64
}

type planState struct {
	Plan
	calls int // eligible calls seen
	fired int
}

// Injector holds per-stage fault plans. It is safe for concurrent use.
type Injector struct {
	mu    sync.Mutex
	rng   *rand.Rand
	plans map[Stage][]*planState
	calls map[Stage]int
	fired map[Stage]int
}

// NewInjector creates an empty injector; seed drives probabilistic
// plans.
func NewInjector(seed int64) *Injector {
	return &Injector{
		rng:   rand.New(rand.NewSource(seed)),
		plans: map[Stage][]*planState{},
		calls: map[Stage]int{},
		fired: map[Stage]int{},
	}
}

// Inject registers a plan at a stage. Multiple plans on one stage fire
// in registration order; the first that triggers wins the call.
func (in *Injector) Inject(stage Stage, p Plan) *Injector {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.plans[stage] = append(in.plans[stage], &planState{Plan: p})
	return in
}

// Fail is shorthand for an always-on error plan.
func (in *Injector) Fail(stage Stage, err error) *Injector {
	return in.Inject(stage, Plan{Kind: KindError, Err: err})
}

// Panic is shorthand for an always-on panic plan.
func (in *Injector) Panic(stage Stage, message string) *Injector {
	return in.Inject(stage, Plan{Kind: KindPanic, Message: message})
}

// Delay is shorthand for an always-on delay plan.
func (in *Injector) Delay(stage Stage, d time.Duration) *Injector {
	return in.Inject(stage, Plan{Kind: KindDelay, Delay: d})
}

// Block registers an always-on gate at the stage: every caller reaching
// the stage parks until the returned release function is invoked (it is
// idempotent). Callers whose context ends first unpark with the context
// error. Deterministic saturation for burst tests: admit N requests,
// wait for them to park, observe the system's behavior, then release.
func (in *Injector) Block(stage Stage) (release func()) {
	ch := make(chan struct{})
	in.Inject(stage, Plan{Kind: KindBlock, Until: ch})
	var once sync.Once
	return func() { once.Do(func() { close(ch) }) }
}

// Fire is called by the pipeline at a stage boundary. It executes the
// first triggering plan: returning an error, panicking, or sleeping.
// A nil receiver or an unplanned stage is a no-op returning nil.
func (in *Injector) Fire(ctx context.Context, stage Stage) error {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	in.calls[stage]++
	var chosen *planState
	for _, ps := range in.plans[stage] {
		ps.calls++
		if ps.calls <= ps.After {
			continue
		}
		if ps.Times > 0 && ps.fired >= ps.Times {
			continue
		}
		if ps.P > 0 && ps.P < 1 && in.rng.Float64() >= ps.P {
			continue
		}
		ps.fired++
		in.fired[stage]++
		chosen = ps
		break
	}
	in.mu.Unlock()
	if chosen == nil {
		return nil
	}
	switch chosen.Kind {
	case KindPanic:
		msg := chosen.Message
		if msg == "" {
			msg = "injected panic"
		}
		panic(fmt.Sprintf("faults: %s: %s", stage, msg))
	case KindDelay:
		t := time.NewTimer(chosen.Delay)
		defer t.Stop()
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-t.C:
			return nil
		}
	case KindBlock:
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-chosen.Until:
			return nil
		}
	default: // KindError
		if chosen.Err != nil {
			return chosen.Err
		}
		return fmt.Errorf("faults: injected error at %s", stage)
	}
}

// Calls reports how often Fire was invoked for the stage.
func (in *Injector) Calls(stage Stage) int {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.calls[stage]
}

// Fired reports how often any plan actually triggered at the stage.
func (in *Injector) Fired(stage Stage) int {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.fired[stage]
}
