package admit_test

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/admit"
)

func TestAcquireFastPath(t *testing.T) {
	c := admit.New(admit.Config{MaxInFlight: 2, MaxQueue: 2})
	rel1, err := c.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	rel2, err := c.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.InFlight != 2 || st.Admitted != 2 {
		t.Fatalf("stats after two admits: %+v", st)
	}
	rel1()
	rel1() // double release must be a no-op
	rel2()
	if st := c.Stats(); st.InFlight != 0 || st.PeakInFlight != 2 {
		t.Fatalf("stats after release: %+v", st)
	}
}

// saturate fills every slot and returns a release-all func.
func saturate(t *testing.T, c *admit.Controller, n int) func() {
	t.Helper()
	releases := make([]func(), 0, n)
	for i := 0; i < n; i++ {
		rel, err := c.Acquire(context.Background())
		if err != nil {
			t.Fatalf("saturating acquire %d: %v", i, err)
		}
		releases = append(releases, rel)
	}
	return func() {
		for _, rel := range releases {
			rel()
		}
	}
}

func TestShedQueueFull(t *testing.T) {
	c := admit.New(admit.Config{MaxInFlight: 1, MaxQueue: 1, RetryAfter: 3 * time.Second})
	defer saturate(t, c, 1)()

	// One waiter fits in the queue...
	entered := make(chan struct{})
	done := make(chan error, 1)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		close(entered)
		_, err := c.Acquire(ctx)
		done <- err
	}()
	<-entered
	waitUntil(t, func() bool { return c.Stats().Queued == 1 })

	// ...the next arrival is shed immediately with the retry hint.
	_, err := c.Acquire(context.Background())
	se, ok := admit.AsShed(err)
	if !ok || !errors.Is(err, admit.ErrQueueFull) {
		t.Fatalf("overflow acquire: %v", err)
	}
	if se.RetryAfter != 3*time.Second {
		t.Fatalf("RetryAfter = %v, want 3s", se.RetryAfter)
	}
	if st := c.Stats(); st.ShedQueueFull != 1 {
		t.Fatalf("stats: %+v", st)
	}

	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("queued acquire after cancel: %v", err)
	}
}

func TestShedDeadlineImmediately(t *testing.T) {
	// A saturated pool plus a deadline too close to serve: shed without
	// waiting at all.
	c := admit.New(admit.Config{MaxInFlight: 1, MaxQueue: 4, MinService: 50 * time.Millisecond})
	defer saturate(t, c, 1)()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.Acquire(ctx)
	if !errors.Is(err, admit.ErrDeadline) {
		t.Fatalf("got %v, want ErrDeadline", err)
	}
	if el := time.Since(start); el > 5*time.Millisecond {
		t.Fatalf("immediate shed took %v", el)
	}
	if st := c.Stats(); st.ShedDeadline != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestShedDeadlineInQueue(t *testing.T) {
	// A queued request is shed once waiting longer would miss its
	// deadline — before the deadline itself, and without ever getting a
	// slot.
	c := admit.New(admit.Config{MaxInFlight: 1, MaxQueue: 4, MinService: 30 * time.Millisecond})
	defer saturate(t, c, 1)()

	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.Acquire(ctx)
	elapsed := time.Since(start)
	if !errors.Is(err, admit.ErrDeadline) {
		t.Fatalf("got %v, want ErrDeadline", err)
	}
	// Shed at ~70ms (100ms deadline − 30ms MinService), never at or
	// past the deadline.
	if elapsed >= 100*time.Millisecond {
		t.Fatalf("request waited %v, past its own deadline", elapsed)
	}
	if ctx.Err() != nil {
		t.Fatal("context expired before the queue shed the request")
	}
}

func TestQueuedRequestAdmittedOnRelease(t *testing.T) {
	c := admit.New(admit.Config{MaxInFlight: 1, MaxQueue: 2})
	releaseAll := saturate(t, c, 1)

	got := make(chan error, 1)
	go func() {
		rel, err := c.Acquire(context.Background())
		if err == nil {
			rel()
		}
		got <- err
	}()
	waitUntil(t, func() bool { return c.Stats().Queued == 1 })
	releaseAll()
	select {
	case err := <-got:
		if err != nil {
			t.Fatalf("queued acquire: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("queued request never admitted after release")
	}
}

func TestBurstBoundedInFlight(t *testing.T) {
	const n = 64
	c := admit.New(admit.Config{MaxInFlight: 3, MaxQueue: 4, RetryAfter: time.Second})
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		ok   int
		shed int
	)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rel, err := c.Acquire(context.Background())
			if err != nil {
				if _, isShed := admit.AsShed(err); !isShed {
					t.Errorf("unexpected acquire error: %v", err)
				}
				mu.Lock()
				shed++
				mu.Unlock()
				return
			}
			time.Sleep(time.Millisecond)
			rel()
			mu.Lock()
			ok++
			mu.Unlock()
		}()
	}
	wg.Wait()
	st := c.Stats()
	if st.PeakInFlight > 3 {
		t.Fatalf("in-flight exceeded the pool: peak %d", st.PeakInFlight)
	}
	if ok+shed != n || st.Admitted != uint64(ok) {
		t.Fatalf("accounting off: ok=%d shed=%d stats=%+v", ok, shed, st)
	}
	if st.InFlight != 0 || st.Queued != 0 {
		t.Fatalf("left-over occupancy: %+v", st)
	}
}

func waitUntil(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition never became true")
}
