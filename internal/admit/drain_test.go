package admit_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/admit"
)

// TestDrain pins the shutdown primitive: Drain blocks while any
// request holds a slot, honors its context, and returns promptly once
// the controller is empty.
func TestDrain(t *testing.T) {
	c := admit.New(admit.Config{MaxInFlight: 1, MaxQueue: 1})
	if c.MaxInFlight() != 1 || c.MaxQueue() != 1 {
		t.Fatalf("configured bounds = %d/%d, want 1/1", c.MaxInFlight(), c.MaxQueue())
	}
	if st := c.Stats(); st.MaxInFlight != 1 || st.MaxQueue != 1 {
		t.Fatalf("stats bounds = %+v, want 1/1", st)
	}

	rel, err := c.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	short, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := c.Drain(short); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Drain with a request in flight = %v, want deadline exceeded", err)
	}

	rel()
	if err := c.Drain(context.Background()); err != nil {
		t.Fatalf("Drain on an empty controller = %v", err)
	}
}

// TestShedErrorMessage pins the error surface clients and logs see.
func TestShedErrorMessage(t *testing.T) {
	e := &admit.ShedError{Cause: admit.ErrQueueFull, RetryAfter: time.Second}
	if msg := e.Error(); msg != "admit: request shed: "+admit.ErrQueueFull.Error() {
		t.Fatalf("shed error message = %q", msg)
	}
	if _, ok := admit.AsShed(errors.New("unrelated")); ok {
		t.Fatal("AsShed matched an unrelated error")
	}
}
