// Package admit is the overload-protection front door of the serving
// layer: a bounded worker pool with a deadline-aware wait queue.
//
// At most MaxInFlight requests hold an execution slot at once. A
// request arriving while every slot is busy waits in a queue of at
// most MaxQueue entries — but never longer than its own deadline
// allows: a request that could not finish within its deadline even if
// admitted right now is shed immediately, and a queued request is shed
// the moment its remaining deadline budget drops to the minimum
// service time. Shed requests fail fast with a *ShedError carrying a
// Retry-After hint, so the HTTP layer can answer 429 instead of
// letting a saturated server time every client out.
//
// A Controller is safe for concurrent use.
package admit

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"
)

// ErrQueueFull is the shed cause when the wait queue is at capacity.
var ErrQueueFull = errors.New("admit: queue full")

// ErrDeadline is the shed cause when the request's deadline would
// expire before it could be admitted and served.
var ErrDeadline = errors.New("admit: deadline would expire in queue")

// ShedError reports a request refused by admission control.
type ShedError struct {
	// Cause is ErrQueueFull or ErrDeadline.
	Cause error
	// RetryAfter is the suggested client back-off.
	RetryAfter time.Duration
}

func (e *ShedError) Error() string {
	return "admit: request shed: " + e.Cause.Error()
}

func (e *ShedError) Unwrap() error { return e.Cause }

// AsShed unwraps err to a *ShedError, if any.
func AsShed(err error) (*ShedError, bool) {
	var se *ShedError
	if errors.As(err, &se) {
		return se, true
	}
	return nil, false
}

// Config tunes a Controller. The zero value gets sensible defaults.
type Config struct {
	// MaxInFlight is the worker-pool size: the number of requests
	// executing concurrently (default 8).
	MaxInFlight int
	// MaxQueue is how many requests may wait for a slot before new
	// arrivals are shed (default 2×MaxInFlight).
	MaxQueue int
	// MinService is the minimum deadline budget a request must still
	// have when admitted; a queued request is shed once waiting any
	// longer would leave less than this (default 10ms).
	MinService time.Duration
	// RetryAfter is the back-off hint attached to sheds (default 1s).
	RetryAfter time.Duration
}

func (c *Config) fill() {
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 8
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 2 * c.MaxInFlight
	}
	if c.MinService <= 0 {
		c.MinService = 10 * time.Millisecond
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
}

// Controller is the admission controller. Use New; the zero value is
// not valid.
type Controller struct {
	cfg Config
	// slots is the worker pool: holding one element = one in-flight
	// request.
	slots chan struct{}
	// queue bounds how many requests wait for a slot.
	queue chan struct{}

	inFlight atomic.Int64
	peak     atomic.Int64
	queued   atomic.Int64
	admitted atomic.Uint64
	shedFull atomic.Uint64
	shedLate atomic.Uint64
}

// New creates a Controller.
func New(cfg Config) *Controller {
	cfg.fill()
	return &Controller{
		cfg:   cfg,
		slots: make(chan struct{}, cfg.MaxInFlight),
		queue: make(chan struct{}, cfg.MaxQueue),
	}
}

// Acquire admits the request or sheds it. On success the returned
// release must be called exactly once when the request finishes
// (calling it more than once is safe). On failure release is nil and
// the error is a *ShedError (queue full, or the deadline would expire
// waiting) or the context's own error if ctx ended while queued.
func (c *Controller) Acquire(ctx context.Context) (release func(), err error) {
	// Fast path: a free slot, no queueing.
	select {
	case c.slots <- struct{}{}:
		return c.admit(), nil
	default:
	}

	// Every slot is busy; the request will have to wait. Budget the
	// wait against the deadline: waiting past deadline-MinService
	// guarantees a miss, so shed at that point (immediately, if the
	// budget is already gone).
	var timeout <-chan time.Time
	if dl, ok := ctx.Deadline(); ok {
		budget := time.Until(dl) - c.cfg.MinService
		if budget <= 0 {
			c.shedLate.Add(1)
			return nil, &ShedError{Cause: ErrDeadline, RetryAfter: c.cfg.RetryAfter}
		}
		t := time.NewTimer(budget)
		defer t.Stop()
		timeout = t.C
	}

	select {
	case c.queue <- struct{}{}:
	default:
		c.shedFull.Add(1)
		return nil, &ShedError{Cause: ErrQueueFull, RetryAfter: c.cfg.RetryAfter}
	}
	c.queued.Add(1)
	defer func() {
		c.queued.Add(-1)
		<-c.queue
	}()

	select {
	case c.slots <- struct{}{}:
		return c.admit(), nil
	case <-timeout:
		c.shedLate.Add(1)
		return nil, &ShedError{Cause: ErrDeadline, RetryAfter: c.cfg.RetryAfter}
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// admit records the admission and returns the slot-release closure.
func (c *Controller) admit() func() {
	c.admitted.Add(1)
	n := c.inFlight.Add(1)
	for {
		p := c.peak.Load()
		if n <= p || c.peak.CompareAndSwap(p, n) {
			break
		}
	}
	var once sync.Once
	return func() {
		once.Do(func() {
			c.inFlight.Add(-1)
			<-c.slots
		})
	}
}

// Stats is a point-in-time view of the controller for health
// endpoints. The JSON field names match the serving /healthz surface.
type Stats struct {
	// InFlight is the number of requests currently holding a slot.
	InFlight int `json:"in_flight"`
	// Queued is the number of requests currently waiting.
	Queued int `json:"queued"`
	// PeakInFlight is the high-water mark of InFlight.
	PeakInFlight int `json:"peak_in_flight"`
	// MaxInFlight and MaxQueue echo the configured capacities, so a
	// health reader can judge the live numbers against the budget.
	MaxInFlight int `json:"max_in_flight"`
	MaxQueue    int `json:"max_queue"`
	// Admitted counts requests that got a slot.
	Admitted uint64 `json:"admitted"`
	// ShedQueueFull counts sheds due to a full queue.
	ShedQueueFull uint64 `json:"shed_queue_full"`
	// ShedDeadline counts sheds due to an expiring deadline.
	ShedDeadline uint64 `json:"shed_deadline"`
}

// Stats reports current counters.
func (c *Controller) Stats() Stats {
	return Stats{
		InFlight:      int(c.inFlight.Load()),
		Queued:        int(c.queued.Load()),
		PeakInFlight:  int(c.peak.Load()),
		MaxInFlight:   c.cfg.MaxInFlight,
		MaxQueue:      c.cfg.MaxQueue,
		Admitted:      c.admitted.Load(),
		ShedQueueFull: c.shedFull.Load(),
		ShedDeadline:  c.shedLate.Load(),
	}
}

// Drain blocks until the controller is empty — no request holding a
// slot and none waiting in the queue — or until ctx ends, returning the
// context's error in that case. Graceful shutdown and tenant eviction
// call it after stopping new arrivals, so the state behind the
// controller is only torn down once every admitted request has
// finished.
func (c *Controller) Drain(ctx context.Context) error {
	tick := time.NewTicker(2 * time.Millisecond)
	defer tick.Stop()
	for {
		if c.inFlight.Load() == 0 && c.queued.Load() == 0 {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-tick.C:
		}
	}
}

// MaxInFlight reports the configured worker-pool size.
func (c *Controller) MaxInFlight() int { return c.cfg.MaxInFlight }

// MaxQueue reports the configured queue capacity.
func (c *Controller) MaxQueue() int { return c.cfg.MaxQueue }
