package repro

// The benchmark harness: one testing.B benchmark per table and figure of
// the paper's evaluation section (§V). Each benchmark drives the shared
// experiment Lab (internal/experiments); the first run of the suite
// generates the benchmarks and trains every system, later runs hit the
// lab's caches. The rendered artifact is logged so that
//
//	go test -bench=. -benchmem
//
// regenerates every paper table/figure in one pass. Key scalar outcomes
// are also attached as benchmark metrics (accuracy per model), so the
// result shapes are visible in the benchmark output itself.

import (
	"sync"
	"testing"

	"repro/internal/eval"
	"repro/internal/experiments"
	"repro/internal/report"
)

var (
	labOnce sync.Once
	lab     *experiments.Lab
)

// sharedLab returns the process-wide experiment lab at small scale.
func sharedLab() *experiments.Lab {
	labOnce.Do(func() { lab = experiments.NewLab(experiments.Small()) })
	return lab
}

// benchTable runs a table-producing experiment once per iteration
// (cached after the first) and logs the rendered artifact.
func benchTable(b *testing.B, run func() (*report.Table, error)) *report.Table {
	b.Helper()
	var last *report.Table
	for i := 0; i < b.N; i++ {
		t, err := run()
		if err != nil {
			b.Fatal(err)
		}
		last = t
	}
	b.Log("\n" + last.Render())
	return last
}

// benchText is benchTable for chart-producing experiments.
func benchText(b *testing.B, run func() (string, error)) string {
	b.Helper()
	var last string
	for i := 0; i < b.N; i++ {
		s, err := run()
		if err != nil {
			b.Fatal(err)
		}
		last = s
	}
	b.Log("\n" + last)
	return last
}

func reportAccuracy(b *testing.B, metric string, res *eval.Result) {
	b.Helper()
	if res != nil {
		b.ReportMetric(res.Overall(), metric)
	}
}

// BenchmarkTable1_BaselineDifficulty regenerates Table 1: GAP and SMBOP
// accuracy by SPIDER difficulty level.
func BenchmarkTable1_BaselineDifficulty(b *testing.B) {
	l := sharedLab()
	benchTable(b, l.Table1)
	reportAccuracy(b, "smbop_overall", l.Baseline("spider", "SMBOP"))
}

// BenchmarkTable3_BenchmarkStats regenerates Table 3: the statistics of
// the four generated benchmarks.
func BenchmarkTable3_BenchmarkStats(b *testing.B) {
	benchTable(b, sharedLab().Table3)
}

// BenchmarkTable4_SpiderBreakdown regenerates Table 4: the five systems
// on the SPIDER validation set by difficulty, plus execution accuracy.
func BenchmarkTable4_SpiderBreakdown(b *testing.B) {
	l := sharedLab()
	benchTable(b, l.Table4)
	if gar, err := l.GARResult("gar", "spider"); err == nil {
		reportAccuracy(b, "gar_overall", gar)
	}
}

// BenchmarkTable5_ClauseTypes regenerates Table 5: accuracy by SQL
// clause type (nested / negation / ORDER BY / GROUP BY / others).
func BenchmarkTable5_ClauseTypes(b *testing.B) {
	benchTable(b, sharedLab().Table5)
}

// BenchmarkTable6_PrecisionMRR regenerates Table 6: Precision@{1,3,10}
// and MRR of GAR on SPIDER and GEO.
func BenchmarkTable6_PrecisionMRR(b *testing.B) {
	l := sharedLab()
	benchTable(b, l.Table6)
	if gar, err := l.GARResult("gar", "spider"); err == nil {
		b.ReportMetric(gar.MRR(), "spider_mrr")
	}
}

// BenchmarkTable7_MTTEQL regenerates Table 7: the MT-TEQL results with
// the SPIDER validation set as sample queries (GAP and RAT-SQL N/A).
func BenchmarkTable7_MTTEQL(b *testing.B) {
	l := sharedLab()
	benchTable(b, l.Table7)
	if gar, err := l.GARResult("gar", "mtteql"); err == nil {
		reportAccuracy(b, "gar_overall", gar)
	}
}

// BenchmarkTable8_Ablation regenerates Table 8: the dialect-builder and
// re-ranking ablations with per-stage miss counts.
func BenchmarkTable8_Ablation(b *testing.B) {
	l := sharedLab()
	benchTable(b, l.Table8)
	if nod, err := l.GARResult("nodialect", "spider"); err == nil {
		reportAccuracy(b, "no_dialect_overall", nod)
	}
	if nor, err := l.GARResult("norerank", "spider"); err == nil {
		reportAccuracy(b, "no_rerank_overall", nor)
	}
}

// BenchmarkTable9_ErrorAnalysis regenerates Table 9: per-stage miss
// counts (data preparation / retrieval / re-ranking) for GAR and GAR-J
// on SPIDER, GEO and QBEN.
func BenchmarkTable9_ErrorAnalysis(b *testing.B) {
	benchTable(b, sharedLab().Table9)
}

// BenchmarkFig9_OverallAccuracy regenerates Fig. 9: the overall accuracy
// bars of the five systems on SPIDER and GEO.
func BenchmarkFig9_OverallAccuracy(b *testing.B) {
	benchText(b, sharedLab().Fig9)
}

// BenchmarkFig10_ResponseTime regenerates Fig. 10: average online
// response time by difficulty for the five systems.
func BenchmarkFig10_ResponseTime(b *testing.B) {
	benchTable(b, sharedLab().Fig10)
}

// BenchmarkFig11_GARJ regenerates Fig. 11: GAR-J vs GAR vs baselines on
// QBEN, SPIDER and GEO.
func BenchmarkFig11_GARJ(b *testing.B) {
	l := sharedLab()
	benchText(b, l.Fig11)
	if garj, err := l.GARResult("garj", "qben"); err == nil {
		reportAccuracy(b, "garj_qben", garj)
	}
	if gar, err := l.GARResult("gar", "qben"); err == nil {
		reportAccuracy(b, "gar_qben", gar)
	}
}

// BenchmarkFig12_UserStudy regenerates Fig. 12: the simulated annotation
// cost box plot per schema-size bucket.
func BenchmarkFig12_UserStudy(b *testing.B) {
	benchText(b, sharedLab().Fig12)
}

// BenchmarkExtensions_FutureWork evaluates the paper's §VII future-work
// directions: schema-derived component augmentation and backbone-
// augmented samples, next to plain GAR.
func BenchmarkExtensions_FutureWork(b *testing.B) {
	benchTable(b, sharedLab().Extensions)
}

// BenchmarkAblation_RecompositionRules measures what each of Algorithm
// 1's recomposition rules contributes to pool size and gold coverage.
func BenchmarkAblation_RecompositionRules(b *testing.B) {
	benchTable(b, sharedLab().RuleAblation)
}
