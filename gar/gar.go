// Package gar is the public API of this repository: a Go implementation
// of GAR, the generate-and-rank approach for natural language to SQL
// translation (Fan et al., ICDE 2023).
//
// GAR translates natural-language questions into SQL for one database in
// three steps: it generalizes a set of sample SQL queries into a large
// pool of component-similar candidates, renders each candidate as a
// natural-language "dialect expression", and ranks the dialects against
// the user's question with a trained two-stage retrieval/re-ranking
// pipeline. The SQL behind the best dialect is the translation.
//
// Minimal usage:
//
//	db := gar.NewDatabase("company")
//	db.AddTable("employee", gar.Key("employee_id"),
//	    gar.NumberColumn("employee_id", "employee id"),
//	    gar.TextColumn("name", "name"),
//	    gar.NumberColumn("age", "age"))
//	sys, err := gar.New(db, gar.Options{})
//	err = sys.Prepare([]string{"SELECT name FROM employee WHERE age > 30"})
//	err = sys.Train([]gar.Example{{Question: "who is older than 30",
//	    SQL: "SELECT name FROM employee WHERE age > 30"}})
//	res, err := sys.Translate("show employees older than 40")
//	fmt.Println(res.SQL)
package gar

import (
	"context"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/breaker"
	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/faults"
	"repro/internal/ltr"
	"repro/internal/memgov"
	"repro/internal/norm"
	"repro/internal/schema"
	"repro/internal/sqlast"
	"repro/internal/sqlparse"
)

// Options configures a GAR system; the zero value is a sensible default.
type Options struct {
	// GeneralizeSize caps the candidate pool per database (the paper
	// uses 20,000; default 2,000).
	GeneralizeSize int
	// RetrievalK is the first-stage retrieval threshold (paper: 100).
	RetrievalK int
	// Seed makes every random choice reproducible.
	Seed int64
	// JoinAnnotations enables GAR-J: the database's join annotations
	// are used to verbalize joins and asterisks.
	JoinAnnotations bool
	// UseIVF switches first-stage retrieval to the clustered index
	// (faster on very large pools, slightly lossy).
	UseIVF bool
	// EncoderEpochs and RerankEpochs control training length.
	EncoderEpochs int
	RerankEpochs  int
	// StageBudget caps each translation stage at a fraction of the
	// time remaining until the request deadline when the stage starts,
	// so one slow stage cannot starve the stages (and fallbacks)
	// behind it. Fractions outside (0,1) disable budgeting for that
	// stage; the zero value disables all budgeting.
	StageBudget StageBudget
	// Workers bounds the fan-out of the parallel sections (pool
	// encoding at snapshot build, batched retrieval, re-rank scoring).
	// 0 means one worker per CPU; 1 forces the sequential path. The
	// ranked output is identical for every setting.
	Workers int
	// CacheSize caps each translation-path cache (question embeddings
	// and full translations, both invalidated automatically when the
	// pool generation changes) in entries; default 1024.
	CacheSize int
	// NoCache disables the translation-path caches entirely.
	NoCache bool
	// ExecGuide enables execution-guided reranking: after the learned
	// ranking, the top ExecTopK candidates are executed against a small
	// deterministic sample instance seeded from the schema (and the
	// content, when set) and candidates that error, exceed ExecBudget,
	// or return degenerate results are demoted. Off by default.
	ExecGuide bool
	// ExecBudget caps one candidate's execution wall time (default
	// 25ms); ExecTopK is how many top candidates execute (default 8).
	ExecBudget time.Duration
	ExecTopK   int
	// MemBudget caps the bytes of retained state (candidate pool,
	// dialect embeddings, translation caches) this system may hold;
	// 0 disables memory governance. Pool builds that hit the budget
	// spill to SpillDir or degrade to a truncated pool — they never
	// OOM-kill the process. See SetResources for fleet-managed budgets.
	MemBudget int64
	// SpillDir is where streaming pool builds overflow candidate
	// records once the RAM buffer budget trips. Empty disables
	// spilling: buffer pressure then truncates the pool instead.
	SpillDir string
	// SpillBufferBytes caps the in-RAM record buffer of a pool build
	// before it overflows to SpillDir. 0 derives a quarter of the
	// effective budget limit.
	SpillBufferBytes int64
}

// StageBudget holds the per-stage deadline fractions; see
// Options.StageBudget.
type StageBudget struct {
	Retrieval   float64
	Rerank      float64
	Postprocess float64
	ExecGuide   float64
}

func (o Options) internal() core.Options {
	return core.Options{
		GeneralizeSize:  o.GeneralizeSize,
		RetrievalK:      o.RetrievalK,
		Seed:            o.Seed,
		JoinAnnotations: o.JoinAnnotations,
		UseIVF:          o.UseIVF,
		EncoderEpochs:   o.EncoderEpochs,
		RerankEpochs:    o.RerankEpochs,
		StageBudget: core.StageBudget{
			Retrieval:   o.StageBudget.Retrieval,
			Rerank:      o.StageBudget.Rerank,
			Postprocess: o.StageBudget.Postprocess,
			ExecGuide:   o.StageBudget.ExecGuide,
		},
		Workers:          o.Workers,
		CacheSize:        o.CacheSize,
		NoCache:          o.NoCache,
		ExecGuide:        o.ExecGuide,
		ExecBudget:       o.ExecBudget,
		ExecTopK:         o.ExecTopK,
		MemBudget:        o.MemBudget,
		SpillDir:         o.SpillDir,
		SpillBufferBytes: o.SpillBufferBytes,
	}
}

// Example is one supervised training pair.
type Example struct {
	Question string
	SQL      string
}

// Candidate is one ranked translation.
type Candidate struct {
	// SQL is the translated query text.
	SQL string
	// Dialect is the natural-language dialect expression of the query.
	Dialect string
	// Score is the ranking score (higher is better).
	Score float64
}

// Result is the outcome of a translation.
type Result struct {
	// SQL is the top-ranked translation.
	SQL string
	// Dialect explains the top translation in (stilted) English.
	Dialect string
	// Candidates holds the ranked alternatives, best first.
	Candidates []Candidate
	// Generation is the pool generation of the snapshot that served
	// this translation: every candidate comes from that one snapshot,
	// even when a Prepare or Swap rebuild ran concurrently.
	Generation uint64
	// Degraded reports that a non-fatal pipeline stage (re-ranking or
	// value post-processing) failed or timed out and a fallback was
	// used: the result is usable but of reduced quality. Warnings
	// explains what happened.
	Degraded bool
	// Warnings lists each degradation that occurred.
	Warnings []string
}

// System is a GAR translator bound to one database.
type System struct {
	inner *core.System
	db    *schema.Database
}

// New creates a system for the database. The database must validate.
func New(db *Database, opts Options) (*System, error) {
	if err := db.inner.Validate(); err != nil {
		return nil, err
	}
	return &System{inner: core.New(db.inner, opts.internal()), db: db.inner}, nil
}

// Prepare runs the offline data-preparation process on the sample SQL
// queries: compositional generalization followed by dialect building.
// It must be called before Train.
func (s *System) Prepare(sampleSQL []string) error {
	queries, err := parseAll(sampleSQL)
	if err != nil {
		return err
	}
	s.inner.Prepare(queries)
	if s.inner.PoolSize() == 0 {
		return fmt.Errorf("gar: no sample query binds against database %s", s.db.Name)
	}
	return nil
}

// PoolSize reports how many candidate queries the preparation produced.
func (s *System) PoolSize() int { return s.inner.PoolSize() }

// Train fits the two-stage ranking models on the examples.
func (s *System) Train(examples []Example) error {
	converted, err := convertExamples(examples)
	if err != nil {
		return err
	}
	return s.inner.Train(converted)
}

// SetContent attaches table rows used for value linking during
// post-processing (filling literal values from the question).
func (s *System) SetContent(content *Content) {
	s.inner.SetContent(content.inner)
}

// Swap atomically replaces the system's candidate pool and deployed
// models: the new pool is generalized, rendered and indexed entirely
// off to the side, then published with a single atomic snapshot swap.
// Translations in flight finish against the old snapshot; unlike the
// Prepare+Train/UseModels sequence there is no intermediate window in
// which the system is unprepared or untrained, which is what `gar
// serve`'s zero-downtime POST /reload is built on. It returns the new
// pool generation.
func (s *System) Swap(sampleSQL []string, m *Models) (uint64, error) {
	queries, err := parseAll(sampleSQL)
	if err != nil {
		return 0, err
	}
	return s.inner.Swap(queries, m.inner)
}

// Generation reports the current pool generation: 0 before the first
// Prepare, bumped by every Prepare or Swap. Result.Generation records
// which generation served a translation.
func (s *System) Generation() uint64 { return s.inner.Generation() }

// Ready reports whether a complete translatable snapshot (prepared
// pool + deployed models) is published. Serving layers use it for
// readiness probing: false between process start (or a bare Prepare)
// and the completing Train/UseModels/Swap.
func (s *System) Ready() bool { return s.inner.Ready() }

// CacheStats reports hit/miss/size counters for the translation-path
// caches (question embeddings and full translations); all-zero when
// caching is disabled. Serving layers surface it in health endpoints.
type CacheStats = core.CacheStats

// CacheStats returns a point-in-time snapshot of the cache counters.
func (s *System) CacheStats() CacheStats { return s.inner.CacheStats() }

// ExecGuideStats reports the execution-guided reranking counters
// (candidates executed, demoted, errors, timeouts); all-zero while
// Options.ExecGuide is off. Serving layers surface it in /healthz.
type ExecGuideStats = core.ExecGuideStats

// ExecGuideStats returns a point-in-time snapshot of the exec-guide
// counters.
func (s *System) ExecGuideStats() ExecGuideStats { return s.inner.ExecGuideStats() }

// MemBudget is a hierarchical byte budget (see internal/memgov):
// reservations charge every level of a process → tenant → operation
// chain, and any level's denial makes the caller spill, truncate or
// skip instead of allocating. A nil budget is fully inert.
type MemBudget = memgov.Budget

// MemBudgetStats is one budget level's gauge snapshot (limit, used,
// peak, denials), shaped for health endpoints.
type MemBudgetStats = memgov.Stats

// NewMemBudget creates a root memory budget; limit <= 0 never denies
// (a pure meter). Derive per-tenant shares with Child.
func NewMemBudget(name string, limit int64) *MemBudget { return memgov.New(name, limit) }

// MemStats is the resource-governance gauge block of one system:
// budget accounting, published-snapshot bytes, spill gauges and the
// degradation record of the current pool's build.
type MemStats = core.MemStats

// MemStats reports the system's resource-governance gauges, lock-free.
func (s *System) MemStats() MemStats { return s.inner.MemStats() }

// SetResources installs the memory budget and spill directory used by
// every subsequent pool build, overriding the Options the system was
// created with. The fleet calls it right after constructing a tenant's
// system so each tenant charges its own share of the process budget.
func (s *System) SetResources(budget *MemBudget, spillDir string) {
	s.inner.SetResources(budget, spillDir)
}

// ReleaseMemory returns the published snapshot's budget reservations.
// Call it when the system is being discarded (the fleet's eviction
// path); without it the dropped snapshot's bytes would charge a shared
// budget forever.
func (s *System) ReleaseMemory() { s.inner.ReleaseMemory() }

// SetRerankBreaker installs a circuit breaker on the re-ranking stage:
// after repeated stage failures or timeouts the stage is skipped
// outright (retrieval-only degraded mode, flagged on Result.Degraded)
// until a cooldown and successful half-open probes close the breaker
// again. Pass nil to disable. Intended for serving layers; see
// internal/breaker for the state machine.
func (s *System) SetRerankBreaker(b *breaker.Breaker) { s.inner.SetRerankBreaker(b) }

// SetFaultInjector installs a deterministic fault injector fired at
// every translation stage boundary (see internal/faults). Pass nil to
// disable. This is a test-harness hook: burst, breaker and soak suites
// use it to inject errors, delays and gates into a live system.
func (s *System) SetFaultInjector(inj *faults.Injector) { s.inner.SetFaultInjector(inj) }

// Translate converts a natural-language question to SQL.
//
//garlint:allow ctxpass -- compatibility wrapper over TranslateContext
func (s *System) Translate(question string) (*Result, error) {
	return s.TranslateContext(context.Background(), question)
}

// TranslateContext converts a natural-language question to SQL,
// honoring the context's deadline and cancellation inside the ranking
// hot loops. Each pipeline stage runs inside a panic-isolation
// boundary, and non-fatal stage failures degrade gracefully instead of
// failing the call: a re-ranking failure or timeout returns the
// first-stage retrieval order, and a value post-processing failure
// returns the ranked SQL with literal placeholders left masked — both
// flagged via Result.Degraded with an explanation in Result.Warnings.
// Only a retrieval failure (or cancellation before a candidate list
// exists) returns an error.
//
// TranslateContext is safe for concurrent use; Prepare and Train may
// run concurrently with translations.
func (s *System) TranslateContext(ctx context.Context, question string) (*Result, error) {
	tr, err := s.inner.TranslateContext(ctx, question)
	if err != nil {
		return nil, err
	}
	out := &Result{Degraded: tr.Degraded, Warnings: tr.Warnings, Generation: tr.Generation}
	for _, c := range tr.Ranked {
		out.Candidates = append(out.Candidates, Candidate{
			SQL:     c.SQL.String(),
			Dialect: c.Dialect,
			Score:   c.Score,
		})
	}
	if tr.Top != nil {
		out.SQL = tr.Top.SQL.String()
		out.Dialect = tr.Top.Dialect
	}
	return out, nil
}

// Explain renders any SQL query as a dialect expression using the
// system's dialect builder (with join annotations under GAR-J).
func (s *System) Explain(sql string) (string, error) {
	q, err := sqlparse.Parse(sql)
	if err != nil {
		return "", err
	}
	if err := s.db.Bind(q); err != nil {
		return "", err
	}
	return s.inner.Builder().Express(q), nil
}

// Models are trained ranking models reusable across databases (the
// paper trains once per benchmark and deploys on unseen databases).
type Models struct{ inner *core.Models }

// TrainModels fits shared models over several prepared systems.
func TrainModels(sets []TrainingSet, opts Options) (*Models, error) {
	var converted []core.TrainingSet
	for _, set := range sets {
		examples, err := convertExamples(set.Examples)
		if err != nil {
			return nil, err
		}
		converted = append(converted, core.TrainingSet{Sys: set.System.inner, Examples: examples})
	}
	m, err := core.TrainModels(converted, opts.internal())
	if err != nil {
		return nil, err
	}
	return &Models{inner: m}, nil
}

// TrainingSet couples a prepared System with its training examples.
type TrainingSet struct {
	System   *System
	Examples []Example
}

// UseModels deploys pre-trained models on this (prepared) system,
// bringing it online without its own training examples.
func (s *System) UseModels(m *Models) error { return s.inner.UseModels(m.inner) }

// ExactMatch reports whether two SQL queries are equivalent under
// SPIDER-style normalization (clause sets, alias- and value-invariant).
func ExactMatch(a, b string) (bool, error) {
	qa, err := sqlparse.Parse(a)
	if err != nil {
		return false, fmt.Errorf("gar: first query: %w", err)
	}
	qb, err := sqlparse.Parse(b)
	if err != nil {
		return false, fmt.Errorf("gar: second query: %w", err)
	}
	return norm.ExactMatch(qa, qb), nil
}

func parseAll(sqls []string) ([]*sqlast.Query, error) {
	out := make([]*sqlast.Query, 0, len(sqls))
	for _, s := range sqls {
		q, err := sqlparse.Parse(s)
		if err != nil {
			return nil, fmt.Errorf("gar: parsing %q: %w", s, err)
		}
		out = append(out, q)
	}
	return out, nil
}

func convertExamples(examples []Example) ([]ltr.Example, error) {
	out := make([]ltr.Example, 0, len(examples))
	for _, ex := range examples {
		q, err := sqlparse.Parse(ex.SQL)
		if err != nil {
			return nil, fmt.Errorf("gar: parsing example %q: %w", ex.SQL, err)
		}
		out = append(out, ltr.Example{NL: ex.Question, Gold: q})
	}
	return out, nil
}

// Content holds table rows for value linking and query execution.
type Content struct {
	inner *engine.Instance
}

// NewContent creates an empty content store for the database.
func NewContent(db *Database) *Content {
	return &Content{inner: engine.NewInstance(db.inner)}
}

// Insert appends one row to a table; values may be string, int, int64
// or float64.
func (c *Content) Insert(table string, values ...any) error {
	row := make([]engine.Value, 0, len(values))
	for _, v := range values {
		switch x := v.(type) {
		case string:
			row = append(row, engine.Str(x))
		case int:
			row = append(row, engine.Num(float64(x)))
		case int64:
			row = append(row, engine.Num(float64(x)))
		case float64:
			row = append(row, engine.Num(x))
		case nil:
			row = append(row, engine.NullValue())
		default:
			return fmt.Errorf("gar: unsupported value type %T", v)
		}
	}
	return c.inner.Insert(table, row...)
}

// Query executes a SQL query against the content and returns the result
// rows as strings.
func (c *Content) Query(sql string) ([][]string, error) {
	q, err := sqlparse.Parse(sql)
	if err != nil {
		return nil, err
	}
	res, err := c.inner.Exec(q)
	if err != nil {
		return nil, err
	}
	out := make([][]string, 0, len(res.Rows))
	for _, r := range res.Rows {
		row := make([]string, 0, len(r))
		for _, v := range r {
			row = append(row, v.String())
		}
		out = append(out, row)
	}
	return out, nil
}

// ErrCorruptModels is wrapped by LoadModels/LoadModelsFile when the
// model stream fails integrity verification — a torn write, a
// truncated file, a bit flip. Check with errors.Is to distinguish
// corruption (restore from a good copy) from ordinary I/O errors.
var ErrCorruptModels = core.ErrCorruptModels

// Save writes the trained models to w in a checksummed envelope;
// reload them with LoadModels and deploy on any prepared system via
// UseModels, skipping training.
func (m *Models) Save(w io.Writer) error { return m.inner.Save(w) }

// SaveFile writes the trained models to a file crash-safely: the data
// is written to a temporary file in the same directory, fsynced, and
// atomically renamed over path, so a crash mid-save never leaves a
// torn file behind. A trailing checksum in the stream lets LoadModels
// reject any torn write that slips through anyway.
func (m *Models) SaveFile(path string) error { return m.inner.SaveFile(path) }

// LoadModels reads models previously written with Save, verifying the
// stream checksum first; corrupted streams fail with an error wrapping
// ErrCorruptModels and never panic.
func LoadModels(r io.Reader) (*Models, error) {
	inner, err := core.LoadModels(r)
	if err != nil {
		return nil, err
	}
	return &Models{inner: inner}, nil
}

// LoadModelsFile reads models from a file written by SaveFile.
func LoadModelsFile(path string) (*Models, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadModels(f)
}

// Durable serving-state checkpoints. A checkpoint captures the complete
// serving snapshot — candidate pool, dialect expressions, candidate
// embeddings and trained models — as one versioned, checksummed file
// (see internal/checkpoint), so a restarted process warm-starts in
// seconds instead of re-running Prepare and Train.

// ErrNotReady is returned by ExportCheckpoint while the system has no
// translatable snapshot: nothing durable exists before the first
// completed Train/UseModels/Swap.
var ErrNotReady = core.ErrNotReady

// CheckpointStats reports the background checkpointer's counters (last
// written generation and time, write/failure/prune totals); serving
// layers surface it in health endpoints.
type CheckpointStats = core.CheckpointStats

// CheckpointerConfig tunes the background checkpointer: retention,
// burst coalescing, and retry backoff. The zero value is a sensible
// serving default.
type CheckpointerConfig = core.CheckpointerConfig

// Checkpointer persists the serving snapshot in the background after
// every Prepare/Train/Swap, coalescing bursts and retrying failures
// with jittered exponential backoff; see NewCheckpointer.
type Checkpointer = core.Checkpointer

// ExportCheckpoint renders the published serving snapshot as a
// checkpoint manifest plus sections, ready for checkpoint.Store.Write
// (or Encode). It fails with ErrNotReady before the system is Ready.
func (s *System) ExportCheckpoint() (checkpoint.Manifest, []checkpoint.Section, error) {
	return s.inner.ExportCheckpoint()
}

// WriteCheckpoint exports the serving snapshot and persists it
// crash-safely into the store, returning the checkpointed generation.
func (s *System) WriteCheckpoint(st *checkpoint.Store) (uint64, error) {
	m, sections, err := s.inner.ExportCheckpoint()
	if err != nil {
		return 0, err
	}
	if err := st.Write(m, sections); err != nil {
		return 0, err
	}
	return m.Generation, nil
}

// RestoreCheckpoint rebuilds and atomically publishes the complete
// serving snapshot from a decoded checkpoint: after it returns the
// system is Ready and translates without running Prepare or Train. A
// checkpoint for another database fails with checkpoint.ErrIncompatible
// and an internally inconsistent one with checkpoint.ErrCorrupt; on any
// failure the system is left untouched.
func (s *System) RestoreCheckpoint(ck *checkpoint.Checkpoint) error {
	return s.inner.RestoreCheckpoint(ck)
}

// RecoverCheckpoint walks the store's checkpoints newest-first and
// restores the first one that fully validates against this system,
// falling back generation-by-generation past anything torn, corrupt or
// incompatible (each recorded in skipped). A nil returned checkpoint
// with nil error means nothing recoverable exists and the system is
// unchanged — the caller starts from a clean empty state.
func (s *System) RecoverCheckpoint(st *checkpoint.Store) (*checkpoint.Checkpoint, []checkpoint.Skipped, error) {
	return st.Recover(s.inner.RestoreCheckpoint)
}

// NewCheckpointer couples this system with a checkpoint store. Start
// registers it on the system's publish hook so every Prepare, Train,
// UseModels and Swap schedules a durable checkpoint; Flush writes one
// synchronously (the graceful-shutdown path).
func (s *System) NewCheckpointer(st *checkpoint.Store, cfg CheckpointerConfig) *Checkpointer {
	return core.NewCheckpointer(s.inner, st, cfg)
}
