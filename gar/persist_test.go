package gar_test

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/gar"
)

// TestModelPersistenceRoundTrip: trained models saved and reloaded must
// rank identically to the originals.
func TestModelPersistenceRoundTrip(t *testing.T) {
	train := trainedSystem(t)
	models, err := gar.TrainModels([]gar.TrainingSet{{System: train, Examples: examples()}},
		gar.Options{Seed: 5, EncoderEpochs: 10, RerankEpochs: 25, RetrievalK: 10})
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := models.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := gar.LoadModels(&buf)
	if err != nil {
		t.Fatal(err)
	}

	// Deploy both on identical fresh systems and compare translations.
	mk := func(m *gar.Models) *gar.System {
		sys, err := gar.New(companyDB(), gar.Options{GeneralizeSize: 400, RetrievalK: 10, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		if err := sys.Prepare(samples()); err != nil {
			t.Fatal(err)
		}
		if err := sys.UseModels(m); err != nil {
			t.Fatal(err)
		}
		return sys
	}
	orig := mk(models)
	restored := mk(loaded)
	for _, q := range []string{
		"how many employees are there",
		"who is the oldest employee",
		"which employees are older than 30",
		"who got the highest one time bonus",
	} {
		a, err := orig.Translate(q)
		if err != nil {
			t.Fatal(err)
		}
		b, err := restored.Translate(q)
		if err != nil {
			t.Fatal(err)
		}
		if a.SQL != b.SQL {
			t.Errorf("restored models translate %q differently:\n orig: %s\n load: %s", q, a.SQL, b.SQL)
		}
		if len(a.Candidates) != len(b.Candidates) {
			t.Errorf("candidate list sizes differ for %q", q)
		}
	}
}

func TestModelPersistenceFile(t *testing.T) {
	train := trainedSystem(t)
	models, err := gar.TrainModels([]gar.TrainingSet{{System: train, Examples: examples()}},
		gar.Options{Seed: 5, RetrievalK: 10})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "models.gob")
	if err := models.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	if _, err := gar.LoadModelsFile(path); err != nil {
		t.Fatal(err)
	}
	// The crash-safe write must not leave its temporary file behind.
	if tmps, _ := filepath.Glob(filepath.Join(dir, ".gar-models-*.tmp")); len(tmps) != 0 {
		t.Errorf("SaveFile left temp files: %v", tmps)
	}
	if _, err := gar.LoadModelsFile(filepath.Join(t.TempDir(), "missing.gob")); err == nil {
		t.Error("loading a missing file should fail")
	}

	// A torn write (file cut mid-stream, as a crash without the atomic
	// rename would leave) must be rejected as corruption, not half-read.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	torn := filepath.Join(dir, "torn.gob")
	if err := os.WriteFile(torn, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := gar.LoadModelsFile(torn); !errors.Is(err, gar.ErrCorruptModels) {
		t.Errorf("torn file: err = %v, want ErrCorruptModels", err)
	}
}

func TestLoadModelsGarbage(t *testing.T) {
	if _, err := gar.LoadModels(bytes.NewReader([]byte("not a gob stream"))); err == nil {
		t.Error("garbage accepted as models")
	}
}

// TestLoadModelsCorrupted: a truncated or bit-flipped model stream must
// return a descriptive error and never panic, for every truncation
// point and a sweep of corruption offsets.
func TestLoadModelsCorrupted(t *testing.T) {
	train := trainedSystem(t)
	models, err := gar.TrainModels([]gar.TrainingSet{{System: train, Examples: examples()}},
		gar.Options{Seed: 5, RetrievalK: 10, EncoderEpochs: 4, RerankEpochs: 6})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := models.Save(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	if len(data) < 64 {
		t.Fatalf("model stream implausibly small: %d bytes", len(data))
	}

	load := func(t *testing.T, b []byte) error {
		t.Helper()
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("LoadModels panicked: %v", r)
			}
		}()
		_, err := gar.LoadModels(bytes.NewReader(b))
		return err
	}

	// Truncations: every length from empty to one byte short, sampled.
	// All are integrity failures and must identify as ErrCorruptModels.
	for _, n := range []int{0, 1, 7, len(data) / 4, len(data) / 2, len(data) - 1} {
		err := load(t, data[:n])
		if err == nil {
			t.Errorf("truncated stream (%d of %d bytes) accepted", n, len(data))
		} else if !errors.Is(err, gar.ErrCorruptModels) {
			t.Errorf("truncation at %d: err = %v, want ErrCorruptModels", n, err)
		}
	}

	// Bit flips across the stream. The trailing checksum makes every
	// one of them detectable: each must be rejected as corruption, and
	// none may panic.
	for off := 0; off < len(data); off += len(data)/37 + 1 {
		corrupt := append([]byte(nil), data...)
		corrupt[off] ^= 0xff
		if err := load(t, corrupt); !errors.Is(err, gar.ErrCorruptModels) {
			t.Errorf("bit flip at %d: err = %v, want ErrCorruptModels", off, err)
		}
	}
}
