package gar

import (
	"fmt"

	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/feedback"
	"repro/internal/sqlparse"
)

// Online learning: the feedback WAL, the background trainer and the
// shadow-promotion gate, re-exported for serving layers. The flow is
//
//	POST /feedback → ValidateSQL → Log.Append (fsync before ack)
//	              → Trainer.ObserveFeedback + Trainer.Notify
//	Trainer loop  → fold WAL into base corpus → retrain off-path
//	              → shadow-score vs live → promote or reject
//	              → regression detector → automatic rollback
//
// See internal/feedback (durability) and internal/core (trainer) for
// the mechanics.

// Trainer is the background retraining loop: it folds accepted
// feedback into the base corpus, trains a candidate ranker off the
// serving path, shadow-scores it against the live ranker and promotes
// it only if no worse beyond TrainerConfig.ShadowThreshold; after a
// promotion a regression detector can roll the system back to the
// pre-promotion checkpoint.
type Trainer = core.Trainer

// TrainerConfig tunes the trainer; the zero value serves.
type TrainerConfig = core.TrainerConfig

// TrainerStats is a health snapshot of the trainer's counters.
type TrainerStats = core.TrainerStats

// ShadowVerdict is one shadow-scoring decision.
type ShadowVerdict = core.ShadowVerdict

// BaseData is the committed corpus a retraining cycle starts from: the
// sample SQL the pool is generalized from and the supervised examples
// the models were originally fit on. Accepted feedback is folded on
// top of it each cycle.
type BaseData struct {
	Samples  []string
	Examples []Example
}

// NewTrainer couples this system with its feedback log, an optional
// checkpoint store (nil disables rollback arming) and a loader for the
// base corpus. The loader runs at the start of every cycle, so spec
// edits on disk are picked up without a restart.
func (s *System) NewTrainer(log *feedback.Log, st *checkpoint.Store, base func() (BaseData, error), cfg TrainerConfig) *Trainer {
	inner := func() (core.TrainingData, error) {
		bd, err := base()
		if err != nil {
			return core.TrainingData{}, err
		}
		queries, err := parseAll(bd.Samples)
		if err != nil {
			return core.TrainingData{}, err
		}
		converted, err := convertExamples(bd.Examples)
		if err != nil {
			return core.TrainingData{}, err
		}
		return core.TrainingData{Samples: queries, Examples: converted}, nil
	}
	return core.NewTrainer(s.inner, log, st, inner, cfg)
}

// ValidateSQL checks that a feedback SQL string parses and binds
// against this system's database schema — the accept-time gate of the
// feedback endpoint: only queries that could in principle join the
// candidate pool are durably recorded.
func (s *System) ValidateSQL(sql string) error {
	q, err := sqlparse.Parse(sql)
	if err != nil {
		return fmt.Errorf("gar: feedback SQL: %w", err)
	}
	if err := s.db.Bind(q); err != nil {
		return fmt.Errorf("gar: feedback SQL: %w", err)
	}
	return nil
}
