package gar_test

import (
	"context"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/gar"
	"repro/internal/feedback"
)

func TestOnlineTrainerPublicAPI(t *testing.T) {
	sys := trainedSystem(t)
	log, err := feedback.Open(filepath.Join(t.TempDir(), "feedback"), feedback.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer log.Close()

	// The accept-time gate: bad SQL never reaches the WAL.
	if err := sys.ValidateSQL("SELEC nope"); err == nil || !strings.Contains(err.Error(), "feedback SQL") {
		t.Fatalf("unparseable SQL accepted: %v", err)
	}
	if err := sys.ValidateSQL("SELECT x FROM nosuch"); err == nil {
		t.Fatal("unbindable SQL accepted")
	}
	if err := sys.ValidateSQL("SELECT COUNT(*) FROM employee"); err != nil {
		t.Fatal(err)
	}

	if _, err := log.Append(feedback.Record{
		Question: "total employee count",
		SQL:      "SELECT COUNT(*) FROM employee",
		Source:   feedback.SourceChosen,
	}); err != nil {
		t.Fatal(err)
	}

	base := func() (gar.BaseData, error) {
		return gar.BaseData{Samples: samples(), Examples: examples()}, nil
	}
	tr := sys.NewTrainer(log, nil, base, gar.TrainerConfig{ShadowThreshold: 0.25})
	gen := sys.Generation()
	if err := tr.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	st := tr.Stats()
	if st.Retrains != 1 || st.Promotions != 1 {
		t.Fatalf("public trainer stats: %+v", st)
	}
	if sys.Generation() <= gen {
		t.Fatalf("promotion did not bump generation: %d -> %d", gen, sys.Generation())
	}
	res, err := sys.Translate("how many employees are there")
	if err != nil {
		t.Fatal(err)
	}
	if ok, _ := gar.ExactMatch(res.SQL, "SELECT COUNT(*) FROM employee"); !ok {
		t.Fatalf("translation regressed after online retrain: %s", res.SQL)
	}
}

// A base loader that fails must fail the cycle, not panic it.
func TestOnlineTrainerBaseError(t *testing.T) {
	sys := trainedSystem(t)
	log, err := feedback.Open(filepath.Join(t.TempDir(), "feedback"), feedback.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer log.Close()
	if _, err := log.Append(feedback.Record{Question: "q", SQL: "SELECT city FROM employee", Source: feedback.SourceChosen}); err != nil {
		t.Fatal(err)
	}
	bad := func() (gar.BaseData, error) {
		return gar.BaseData{Samples: []string{"SELEC broken"}, Examples: nil}, nil
	}
	tr := sys.NewTrainer(log, nil, bad, gar.TrainerConfig{})
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := tr.Flush(ctx); err == nil || !strings.Contains(err.Error(), "parsing") {
		t.Fatalf("broken base corpus: %v", err)
	}
	if st := tr.Stats(); st.Failures == 0 || st.Promotions != 0 {
		t.Fatalf("stats after base error: %+v", st)
	}
}
