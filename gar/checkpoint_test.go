package gar_test

import (
	"errors"
	"testing"

	"repro/gar"
	"repro/internal/checkpoint"
)

// freshSystem builds an untrained system with the same options the
// trainedSystem fixture uses — the warm-start target.
func freshSystem(t *testing.T) *gar.System {
	t.Helper()
	sys, err := gar.New(companyDB(), gar.Options{GeneralizeSize: 400, RetrievalK: 10, Seed: 5,
		EncoderEpochs: 10, RerankEpochs: 25})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// TestPublicAPICheckpoint exercises the whole facade surface: write a
// checkpoint from a trained system, recover it into a fresh one, and
// get identical translations without Prepare or Train.
func TestPublicAPICheckpoint(t *testing.T) {
	dir := t.TempDir()
	st, err := checkpoint.Open(dir)
	if err != nil {
		t.Fatal(err)
	}

	sys := trainedSystem(t)
	gen, err := sys.WriteCheckpoint(st)
	if err != nil {
		t.Fatal(err)
	}
	if gen != sys.Generation() {
		t.Fatalf("wrote generation %d, want %d", gen, sys.Generation())
	}

	fresh := freshSystem(t)
	ck, skipped, err := fresh.RecoverCheckpoint(st)
	if err != nil {
		t.Fatal(err)
	}
	if ck == nil || len(skipped) != 0 {
		t.Fatalf("recover: ck=%v skipped=%v", ck, skipped)
	}
	if !fresh.Ready() || fresh.Generation() != gen {
		t.Fatalf("warm start failed: ready=%v gen=%d", fresh.Ready(), fresh.Generation())
	}

	for _, q := range []string{"how many employees are there", "who is the oldest employee"} {
		a, err := sys.Translate(q)
		if err != nil {
			t.Fatal(err)
		}
		b, err := fresh.Translate(q)
		if err != nil {
			t.Fatal(err)
		}
		if a.SQL != b.SQL || a.Dialect != b.Dialect {
			t.Fatalf("%q: warm-start answer %q (%q), want %q (%q)", q, b.SQL, b.Dialect, a.SQL, a.Dialect)
		}
	}
}

// TestPublicAPICheckpointNotReady: an untrained system has nothing
// durable to write, and recovering from an empty store is a clean
// no-checkpoint result, not an error.
func TestPublicAPICheckpointNotReady(t *testing.T) {
	st, err := checkpoint.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	sys := freshSystem(t)
	if _, err := sys.WriteCheckpoint(st); !errors.Is(err, gar.ErrNotReady) {
		t.Fatalf("write from untrained system: %v, want ErrNotReady", err)
	}
	ck, skipped, err := sys.RecoverCheckpoint(st)
	if err != nil || ck != nil || len(skipped) != 0 {
		t.Fatalf("recover from empty store: ck=%v skipped=%v err=%v", ck, skipped, err)
	}
	if sys.Ready() {
		t.Fatal("empty recovery marked the system ready")
	}
}
