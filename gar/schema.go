package gar

import "repro/internal/schema"

// Database is a schema under construction for a GAR system.
type Database struct {
	inner *schema.Database
}

// NewDatabase creates an empty database schema.
func NewDatabase(name string) *Database {
	return &Database{inner: &schema.Database{Name: name}}
}

// TableOption configures a table during AddTable.
type TableOption func(*schema.Table)

// Column describes one column for AddTable.
type Column struct {
	Name string
	// NL is the natural-language annotation ("employee id"); empty
	// derives it from the identifier.
	NL     string
	Number bool
}

// TextColumn declares a text column with its NL annotation.
func TextColumn(name, nl string) Column { return Column{Name: name, NL: nl} }

// NumberColumn declares a numeric column with its NL annotation.
func NumberColumn(name, nl string) Column { return Column{Name: name, NL: nl, Number: true} }

// Key sets the table's primary key columns; compound keys change the
// dialect builder's per-row semantics ("one bonus").
func Key(cols ...string) TableOption {
	return func(t *schema.Table) { t.PrimaryKey = cols }
}

// Annotated sets the table's natural-language name.
func Annotated(nl string) TableOption {
	return func(t *schema.Table) { t.Annotation = nl }
}

// AddTable appends a table built from options and columns.
func (d *Database) AddTable(name string, opts ...any) *Database {
	t := &schema.Table{Name: name}
	for _, o := range opts {
		switch x := o.(type) {
		case TableOption:
			x(t)
		case Column:
			typ := schema.Text
			if x.Number {
				typ = schema.Number
			}
			t.Columns = append(t.Columns, &schema.Column{Name: x.Name, Type: typ, Annotation: x.NL})
		}
	}
	d.inner.Tables = append(d.inner.Tables, t)
	return d
}

// AddForeignKey declares fromTable.fromColumn → toTable.toColumn.
func (d *Database) AddForeignKey(fromTable, fromColumn, toTable, toColumn string) *Database {
	d.inner.ForeignKeys = append(d.inner.ForeignKeys, schema.ForeignKey{
		FromTable: fromTable, FromColumn: fromColumn,
		ToTable: toTable, ToColumn: toColumn,
	})
	return d
}

// JoinAnnotation is the GAR-J annotation of one join path (§IV):
// joining tables, conditions, a description of the joined "new table",
// and what one row of the join result denotes.
type JoinAnnotation struct {
	Tables      []string
	Conditions  []JoinCondition
	Description string
	TableKeys   string
}

// JoinCondition is one equi-join edge of an annotated path.
type JoinCondition struct {
	LeftTable, LeftColumn   string
	RightTable, RightColumn string
}

// AddJoinAnnotation attaches a GAR-J join annotation.
func (d *Database) AddJoinAnnotation(ann JoinAnnotation) *Database {
	conv := &schema.JoinAnnotation{
		Tables:      ann.Tables,
		Description: ann.Description,
		TableKeys:   ann.TableKeys,
	}
	for _, c := range ann.Conditions {
		conv.Conditions = append(conv.Conditions, schema.JoinEdge{
			LeftTable: c.LeftTable, LeftColumn: c.LeftColumn,
			RightTable: c.RightTable, RightColumn: c.RightColumn,
		})
	}
	d.inner.JoinAnnotations = append(d.inner.JoinAnnotations, conv)
	return d
}

// Validate checks the schema for consistency.
func (d *Database) Validate() error { return d.inner.Validate() }
