package gar_test

import (
	"testing"

	"repro/gar"
)

// TestMemoryGovernancePublicAPI pins the resource-governance surface of
// the public API: a budgeted system spills its pool build through
// SpillDir, reports live gauges via MemStats, translates identically to
// an ungoverned system, and ReleaseMemory returns every accounted byte.
func TestMemoryGovernancePublicAPI(t *testing.T) {
	plain := trainedSystem(t)

	sys, err := gar.New(companyDB(), gar.Options{
		GeneralizeSize: 400, RetrievalK: 10, Seed: 5,
		EncoderEpochs: 10, RerankEpochs: 25,
		MemBudget: 64 << 20, SpillDir: t.TempDir(), SpillBufferBytes: 4096,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Prepare(samples()); err != nil {
		t.Fatal(err)
	}
	if err := sys.Train(examples()); err != nil {
		t.Fatal(err)
	}

	ms := sys.MemStats()
	if ms.Budget == nil || ms.Budget.Limit != 64<<20 {
		t.Fatalf("budget gauge = %+v", ms.Budget)
	}
	if ms.Budget.Used <= 0 || ms.SnapshotBytes <= 0 {
		t.Fatalf("nothing accounted: %+v", ms)
	}
	if ms.SpillFiles == 0 {
		t.Fatalf("4KiB buffer never spilled: %+v", ms)
	}
	if ms.Degraded {
		t.Fatalf("roomy budget degraded: %q", ms.DegradeReason)
	}

	// Governance must not change answers: both systems agree.
	for _, q := range []string{"how many employees are there", "which employees are older than 30"} {
		want, err := plain.Translate(q)
		if err != nil {
			t.Fatal(err)
		}
		got, err := sys.Translate(q)
		if err != nil {
			t.Fatal(err)
		}
		if got.SQL != want.SQL {
			t.Errorf("governed translation diverged for %q: %q vs %q", q, got.SQL, want.SQL)
		}
	}

	sys.ReleaseMemory()
	if used := sys.MemStats().Budget.Used; used != 0 {
		t.Errorf("ReleaseMemory left %d bytes accounted", used)
	}
}

// TestSetResourcesSharedBudget pins the fleet-shaped wiring: two
// systems given Child shares of one NewMemBudget root both account
// against it, and releasing one returns exactly its share.
func TestSetResourcesSharedBudget(t *testing.T) {
	root := gar.NewMemBudget("process", 128<<20)
	build := func(name string) *gar.System {
		sys, err := gar.New(companyDB(), gar.Options{
			GeneralizeSize: 400, RetrievalK: 10, Seed: 5,
			EncoderEpochs: 10, RerankEpochs: 25,
		})
		if err != nil {
			t.Fatal(err)
		}
		sys.SetResources(root.Child(name, 32<<20), t.TempDir())
		if err := sys.Prepare(samples()); err != nil {
			t.Fatal(err)
		}
		return sys
	}
	a := build("a")
	afterA := root.Used()
	if afterA <= 0 {
		t.Fatal("first tenant accounted nothing against the root")
	}
	b := build("b")
	if root.Used() <= afterA {
		t.Fatal("second tenant accounted nothing against the root")
	}
	if bs := b.MemStats(); bs.Budget == nil || bs.Budget.Name != "b" {
		t.Fatalf("tenant budget gauge = %+v", bs.Budget)
	}

	a.ReleaseMemory()
	if got := root.Used(); got != b.MemStats().Budget.Used {
		t.Errorf("root holds %d bytes after releasing tenant a; tenant b accounts %d",
			got, b.MemStats().Budget.Used)
	}
}
