package gar_test

import (
	"context"
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/gar"
)

// TestTranslateContextPublic covers the context-aware public entry
// point: a normal call succeeds un-degraded, an expired context fails
// with the context error, and a generous deadline still succeeds.
func TestTranslateContextPublic(t *testing.T) {
	sys := trainedSystem(t)

	res, err := sys.TranslateContext(context.Background(), "how many employees are there")
	if err != nil {
		t.Fatal(err)
	}
	if res.Degraded || len(res.Warnings) != 0 {
		t.Fatalf("clean translation degraded: %+v", res)
	}
	ok, err := gar.ExactMatch(res.SQL, "SELECT COUNT(*) FROM employee")
	if err != nil || !ok {
		t.Fatalf("translation wrong: %s (%v)", res.SQL, err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := sys.TranslateContext(ctx, "how many employees are there"); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled translate: got %v, want context.Canceled", err)
	}

	ctx2, cancel2 := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel2()
	if _, err := sys.TranslateContext(ctx2, "who is the oldest employee"); err != nil {
		t.Fatalf("translate under generous deadline: %v", err)
	}
}

// TestConcurrentTranslateStress hammers TranslateContext from many
// goroutines while another goroutine repeatedly re-Prepares and
// re-Trains the same system. It must pass under `go test -race`: every
// call either succeeds or returns an ordinary error (e.g. "Translate
// before Train" while a re-Prepare is in flight) — never a panic, never
// a torn result.
func TestConcurrentTranslateStress(t *testing.T) {
	sys, err := gar.New(companyDB(), gar.Options{GeneralizeSize: 120, RetrievalK: 8, Seed: 5,
		EncoderEpochs: 4, RerankEpochs: 6})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Prepare(samples()); err != nil {
		t.Fatal(err)
	}
	if err := sys.Train(examples()); err != nil {
		t.Fatal(err)
	}

	questions := []string{
		"how many employees are there",
		"which employees are older than 30",
		"who is the oldest employee",
		"what is the average bonus",
		"list the cities of employees",
	}

	const workers = 8
	var (
		wg        sync.WaitGroup
		stop      = make(chan struct{})
		succeeded atomic.Int64
		errored   atomic.Int64
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				ctx, cancel := context.WithTimeout(context.Background(), time.Second)
				res, err := sys.TranslateContext(ctx, questions[(w+i)%len(questions)])
				cancel()
				if err != nil {
					// Re-Prepare in flight or deadline hit: an ordinary
					// error is the contract; anything else is not.
					if !strings.Contains(err.Error(), "Translate before Train") &&
						!errors.Is(err, context.DeadlineExceeded) {
						t.Errorf("unexpected translate error: %v", err)
						return
					}
					errored.Add(1)
					continue
				}
				if res.SQL == "" || len(res.Candidates) == 0 {
					t.Errorf("torn result: %+v", res)
					return
				}
				succeeded.Add(1)
			}
		}(w)
	}

	// The mutator: re-Prepare (invalidating the trained pipeline) and
	// re-Train while translations are in flight.
	for round := 0; round < 3; round++ {
		if err := sys.Prepare(samples()); err != nil {
			t.Error(err)
			break
		}
		if err := sys.Train(examples()); err != nil {
			t.Error(err)
			break
		}
	}
	time.Sleep(50 * time.Millisecond)
	close(stop)
	wg.Wait()

	if succeeded.Load() == 0 {
		t.Fatalf("no translation ever succeeded (errored=%d)", errored.Load())
	}
	t.Logf("stress: %d translations ok, %d clean errors during re-prepare",
		succeeded.Load(), errored.Load())
}
