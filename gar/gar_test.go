package gar_test

import (
	"strings"
	"testing"

	"repro/gar"
)

func companyDB() *gar.Database {
	db := gar.NewDatabase("company")
	db.AddTable("employee", gar.Key("employee_id"),
		gar.NumberColumn("employee_id", "employee id"),
		gar.TextColumn("name", "name"),
		gar.NumberColumn("age", "age"),
		gar.TextColumn("city", "city"))
	db.AddTable("evaluation", gar.Key("employee_id", "year_awarded"),
		gar.NumberColumn("employee_id", "employee id"),
		gar.TextColumn("year_awarded", "year awarded"),
		gar.NumberColumn("bonus", "bonus"))
	db.AddForeignKey("evaluation", "employee_id", "employee", "employee_id")
	return db
}

func samples() []string {
	return []string{
		"SELECT name FROM employee WHERE age > 30",
		"SELECT age FROM employee WHERE city = 'Austin'",
		"SELECT COUNT(*) FROM employee",
		"SELECT city, COUNT(*) FROM employee GROUP BY city",
		"SELECT name FROM employee ORDER BY age DESC LIMIT 1",
		"SELECT AVG(bonus) FROM evaluation",
		"SELECT T1.name FROM employee AS T1 JOIN evaluation AS T2 ON T1.employee_id = T2.employee_id ORDER BY T2.bonus DESC LIMIT 1",
		"SELECT city FROM employee",
	}
}

func examples() []gar.Example {
	return []gar.Example{
		{Question: "which employees are older than 30", SQL: "SELECT name FROM employee WHERE age > 30"},
		{Question: "what is the age of employees in Austin", SQL: "SELECT age FROM employee WHERE city = 'Austin'"},
		{Question: "how many employees are there", SQL: "SELECT COUNT(*) FROM employee"},
		{Question: "how many employees per city", SQL: "SELECT city, COUNT(*) FROM employee GROUP BY city"},
		{Question: "who is the oldest employee", SQL: "SELECT name FROM employee ORDER BY age DESC LIMIT 1"},
		{Question: "what is the average bonus", SQL: "SELECT AVG(bonus) FROM evaluation"},
		{Question: "who got the highest one time bonus",
			SQL: "SELECT T1.name FROM employee AS T1 JOIN evaluation AS T2 ON T1.employee_id = T2.employee_id ORDER BY T2.bonus DESC LIMIT 1"},
		{Question: "list the cities of employees", SQL: "SELECT city FROM employee"},
	}
}

func trainedSystem(t *testing.T) *gar.System {
	t.Helper()
	sys, err := gar.New(companyDB(), gar.Options{GeneralizeSize: 400, RetrievalK: 10, Seed: 5,
		EncoderEpochs: 10, RerankEpochs: 25})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Prepare(samples()); err != nil {
		t.Fatal(err)
	}
	if err := sys.Train(examples()); err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestPublicAPIEndToEnd(t *testing.T) {
	sys := trainedSystem(t)
	if sys.PoolSize() < len(samples()) {
		t.Fatalf("pool too small: %d", sys.PoolSize())
	}
	res, err := sys.Translate("how many employees are there")
	if err != nil {
		t.Fatal(err)
	}
	ok, err := gar.ExactMatch(res.SQL, "SELECT COUNT(*) FROM employee")
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Errorf("translation wrong: %s (dialect %q)", res.SQL, res.Dialect)
	}
	if len(res.Candidates) == 0 || res.Candidates[0].SQL != res.SQL {
		t.Error("candidates inconsistent with top result")
	}
}

func TestPublicAPIValidation(t *testing.T) {
	bad := gar.NewDatabase("x")
	bad.AddTable("t", gar.Key("missing"), gar.TextColumn("a", "a"))
	if _, err := gar.New(bad, gar.Options{}); err == nil {
		t.Error("invalid schema accepted")
	}
	sys, err := gar.New(companyDB(), gar.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Prepare([]string{"not sql at all"}); err == nil {
		t.Error("unparsable sample accepted")
	}
	if err := sys.Prepare([]string{"SELECT x FROM nosuch"}); err == nil {
		t.Error("unbindable sample accepted")
	}
}

func TestExplain(t *testing.T) {
	sys := trainedSystem(t)
	expl, err := sys.Explain("SELECT name FROM employee ORDER BY age DESC LIMIT 1")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Find the name of employee", "descending order of the age"} {
		if !strings.Contains(expl, want) {
			t.Errorf("Explain missing %q: %s", want, expl)
		}
	}
	if _, err := sys.Explain("SELECT"); err == nil {
		t.Error("Explain accepted broken SQL")
	}
}

func TestContentAndValueLinking(t *testing.T) {
	db := companyDB()
	sys, err := gar.New(db, gar.Options{GeneralizeSize: 400, RetrievalK: 10, Seed: 5,
		EncoderEpochs: 10, RerankEpochs: 25})
	if err != nil {
		t.Fatal(err)
	}
	content := gar.NewContent(db)
	if err := content.Insert("employee", 1, "George", 45, "Madrid"); err != nil {
		t.Fatal(err)
	}
	if err := content.Insert("employee", 2, "John", 32, "Austin"); err != nil {
		t.Fatal(err)
	}
	sys.SetContent(content)
	if err := sys.Prepare(samples()); err != nil {
		t.Fatal(err)
	}
	if err := sys.Train(examples()); err != nil {
		t.Fatal(err)
	}
	res, err := sys.Translate("what is the age of employees in Austin")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(strings.ToLower(res.SQL), "austin") {
		t.Errorf("value not linked into SQL: %s", res.SQL)
	}
	rows, err := content.Query(res.SQL)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0][0] != "32" {
		t.Errorf("execution result wrong: %v", rows)
	}
}

func TestContentErrors(t *testing.T) {
	content := gar.NewContent(companyDB())
	if err := content.Insert("nosuch", 1); err == nil {
		t.Error("insert into unknown table accepted")
	}
	if err := content.Insert("employee", 1, "x"); err == nil {
		t.Error("short row accepted")
	}
	if err := content.Insert("employee", 1, "x", struct{}{}, "y"); err == nil {
		t.Error("unsupported value type accepted")
	}
	if _, err := content.Query("SELECT nosuch FROM employee"); err == nil {
		t.Error("bad query accepted")
	}
}

func TestCrossDatabaseModels(t *testing.T) {
	train := trainedSystem(t)
	models, err := gar.TrainModels([]gar.TrainingSet{{System: train, Examples: examples()}},
		gar.Options{Seed: 5, EncoderEpochs: 10, RerankEpochs: 25, RetrievalK: 10})
	if err != nil {
		t.Fatal(err)
	}
	// Deploy on a fresh schema.
	shopDB := gar.NewDatabase("shops")
	shopDB.AddTable("shop", gar.Key("shop_id"),
		gar.NumberColumn("shop_id", "shop id"),
		gar.TextColumn("shop_name", "name"),
		gar.NumberColumn("products", "number of products"))
	sys, err := gar.New(shopDB, gar.Options{GeneralizeSize: 100, RetrievalK: 5, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Prepare([]string{
		"SELECT shop_name FROM shop",
		"SELECT COUNT(*) FROM shop",
		"SELECT shop_name FROM shop ORDER BY products DESC LIMIT 1",
	}); err != nil {
		t.Fatal(err)
	}
	if err := sys.UseModels(models); err != nil {
		t.Fatal(err)
	}
	res, err := sys.Translate("how many shops are there")
	if err != nil {
		t.Fatal(err)
	}
	if res.SQL == "" {
		t.Fatal("no translation on unseen database")
	}
}

func TestExactMatchHelper(t *testing.T) {
	ok, err := gar.ExactMatch("SELECT a, b FROM t", "SELECT b, a FROM t")
	if err != nil || !ok {
		t.Errorf("set-equal select lists should match: %v %v", ok, err)
	}
	ok, _ = gar.ExactMatch("SELECT a FROM t", "SELECT b FROM t")
	if ok {
		t.Error("different queries matched")
	}
	if _, err := gar.ExactMatch("garbage", "SELECT a FROM t"); err == nil {
		t.Error("garbage accepted")
	}
}
