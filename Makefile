# The tier-1 gate: everything a PR must keep green.
.PHONY: verify test build vet race bench

build:
	go build ./...

vet:
	go vet ./...

test:
	go test ./...

race:
	go test -race ./...

# verify is the full robustness gate: build, static checks, and the
# whole suite (including the fault-injection matrix and the concurrent
# translate stress test) under the race detector.
verify: build vet race

bench:
	go test -bench=. -benchmem
