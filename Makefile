# The tier-1 gate: everything a PR must keep green.
.PHONY: verify test build vet lint garlint race bench bench-translate bench-smoke cover qualgate stress

build:
	go build ./...

vet:
	go vet ./...

# garlint builds the repository's custom vet tool (see cmd/garlint);
# lint runs its seven analyzers (nopanic, ctxpass, mustonly, snaponce,
# lockhold, goexit, errlost) over every package through the go vet
# driver. Add -suppressions/-json/-github after the package list to
# reshape the report.
garlint:
	go build -o bin/garlint ./cmd/garlint

lint: garlint
	go vet -vettool=bin/garlint ./...

test:
	go test ./...

race:
	go test -race ./...

# verify is the full robustness gate: build, static checks (go vet plus
# the custom garlint analyzers), the whole suite (including the
# fault-injection matrix and the concurrent translate stress test)
# under the race detector, and the translation-quality ratchet.
verify: build vet lint race qualgate

bench:
	go test -bench=. -benchmem

# bench-translate regenerates the committed BENCH_translate.json: the
# translate hot path measured sequential-vs-batched (with a ranked-
# output equality assertion) and cache miss-vs-hit.
bench-translate:
	go run ./cmd/garbench -bench translate -iters 5 -benchout BENCH_translate.json

# bench-generalize regenerates the committed BENCH_generalize.json: the
# budget-governed streaming pool build at 1k/10k/100k records, with
# byte-identical-replay, budget-peak, and heap-vs-budget assertions.
bench-generalize:
	go run ./cmd/garbench -bench generalize -iters 3 -benchout BENCH_generalize.json

# bench-smoke is the CI smoke run: one short iteration proving each
# benchmark harness still builds, runs, and passes its equality
# assertions; the JSON goes to a scratch path so CI never dirties the
# committed numbers.
bench-smoke:
	go run ./cmd/garbench -bench translate -iters 1 -benchout /tmp/BENCH_translate.json
	go run ./cmd/garbench -bench generalize -iters 1 -benchout /tmp/BENCH_generalize.json

# cover is the coverage gate: per-package floors live in
# coverage_floors.json and a package may not fall more than one point
# below its floor. After adding tests, ratchet the floors up with
# `go run ./cmd/covergate -write`.
cover:
	go run ./cmd/covergate -floors coverage_floors.json

# qualgate is the translation-quality ratchet: it retrains the committed
# benchmark suites from seed, measures top-1/top-k accuracy and
# translate latency for both the LTR-only and execution-guided
# pipelines, and fails on any accuracy drop (exact — training is
# deterministic) or a p50 regression beyond max(3x baseline, 250ms).
# On failure the measured-vs-committed diff lands in
# BASELINE_quality_diff.json. After a deliberate improvement, ratchet
# with `go run ./cmd/garbench -baseline -write`.
qualgate:
	go run ./cmd/garbench -baseline

# stress runs the overload and resilience suites under the race
# detector: burst admission (deterministic saturation via fault gates),
# snapshot-swap races against live traffic, breaker trip/recover
# cycles, the fault-injection matrix, torn-write persistence, the
# checkpoint crash/recovery drills (write/recover fault matrix, SIGKILL
# mid-write crash matrix, SIGTERM restart round-trip), the fleet
# suite (tenant isolation under faults, per-tenant burst shedding,
# LRU eviction/warm-reactivation churn, fleet restart round-trip), and
# the online learning loop (feedback WAL fault matrix and SIGKILL
# crash drill, shadow-gated promotion, rollback under live traffic).
stress:
	go test -race -timeout 10m -count=1 \
		-run 'TestServeBurst|TestServeReload|TestServeNotReady|TestServeHealthzDegraded|TestSwap|TestRerankBreaker|TestStageBudget|TestPrepareDuringTraffic|TestBreaker|TestAcquire|TestShed|TestQueued|TestBurst|TestBlockGate|TestFault|TestConcurrent|TestLoadModels|TestModelPersistence|TestParallelTranslateDeterminism|TestCheckpoint|TestCrash|TestRecover|TestStore|TestServeRestartSIGTERM|TestServeWarmStart|TestServeAllCorrupt|TestFleet|TestServeFleet|TestFeedback|TestTrainer|TestOnline|TestServeFeedback' \
		./cmd/gar/ ./internal/core/ ./internal/admit/ ./internal/breaker/ ./internal/faults/ ./internal/checkpoint/ ./internal/fleet/ ./internal/feedback/ ./internal/spill/ ./internal/memgov/ ./gar/
