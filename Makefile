# The tier-1 gate: everything a PR must keep green.
.PHONY: verify test build vet lint garlint race bench stress

build:
	go build ./...

vet:
	go vet ./...

# garlint builds the repository's custom vet tool (see cmd/garlint);
# lint runs its analyzers (nopanic, ctxpass, mustonly) over every
# package through the go vet driver.
garlint:
	go build -o bin/garlint ./cmd/garlint

lint: garlint
	go vet -vettool=bin/garlint ./...

test:
	go test ./...

race:
	go test -race ./...

# verify is the full robustness gate: build, static checks (go vet plus
# the custom garlint analyzers), and the whole suite (including the
# fault-injection matrix and the concurrent translate stress test)
# under the race detector.
verify: build vet lint race

bench:
	go test -bench=. -benchmem

# stress runs the overload and resilience suites under the race
# detector: burst admission (deterministic saturation via fault gates),
# snapshot-swap races against live traffic, breaker trip/recover
# cycles, the fault-injection matrix, and torn-write persistence.
stress:
	go test -race -timeout 5m -count=1 \
		-run 'TestServeBurst|TestServeReload|TestServeNotReady|TestServeHealthzDegraded|TestSwap|TestRerankBreaker|TestStageBudget|TestPrepareDuringTraffic|TestBreaker|TestAcquire|TestShed|TestQueued|TestBurst|TestBlockGate|TestFault|TestConcurrent|TestLoadModels|TestModelPersistence' \
		./cmd/gar/ ./internal/core/ ./internal/admit/ ./internal/breaker/ ./internal/faults/ ./gar/
