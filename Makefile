# The tier-1 gate: everything a PR must keep green.
.PHONY: verify test build vet lint garlint race bench

build:
	go build ./...

vet:
	go vet ./...

# garlint builds the repository's custom vet tool (see cmd/garlint);
# lint runs its analyzers (nopanic, ctxpass, mustonly) over every
# package through the go vet driver.
garlint:
	go build -o bin/garlint ./cmd/garlint

lint: garlint
	go vet -vettool=bin/garlint ./...

test:
	go test ./...

race:
	go test -race ./...

# verify is the full robustness gate: build, static checks (go vet plus
# the custom garlint analyzers), and the whole suite (including the
# fault-injection matrix and the concurrent translate stress test)
# under the race detector.
verify: build vet lint race

bench:
	go test -bench=. -benchmem
