// Benchmark: the paper's cross-domain evaluation in miniature. A
// SPIDER-like benchmark is generated (disjoint train and validation
// databases), the ranking models are trained once on the train split,
// deployed on each unseen validation database, and translation accuracy
// is reported by difficulty level — the Table 4 protocol.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/eval"
	"repro/internal/hardness"
)

func main() {
	bench := datasets.SpiderLike(datasets.SpiderConfig{
		TrainDBs: 4, ValDBs: 2, TrainPerDB: 40, ValPerDB: 20, Seed: 3,
	})
	fmt.Printf("generated %d train and %d validation items over %d+%d databases\n",
		len(bench.Train), len(bench.Val),
		len(datasets.DBNames(bench.Train)), len(datasets.DBNames(bench.Val)))

	runner, err := eval.NewGARRunner(bench, bench, core.Options{
		GeneralizeSize: 3000,
		RetrievalK:     50,
		Seed:           4,
		EncoderEpochs:  10,
		RerankEpochs:   16,
	})
	if err != nil {
		log.Fatal(err)
	}
	res, err := runner.Evaluate("GAR", bench.Val, eval.SamplesFromGeneralization)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nGAR on the unseen validation databases:\n")
	fmt.Printf("  overall accuracy: %.3f\n", res.Overall())
	fmt.Printf("  execution accuracy: %.3f\n", res.Exec())
	by := res.ByLevel()
	counts := res.LevelCounts()
	for _, lvl := range hardness.Levels {
		fmt.Printf("  %-11s %.3f  (%d queries)\n", lvl.String()+":", by[lvl], counts[lvl])
	}
	fmt.Printf("  P@1=%.3f P@3=%.3f P@10=%.3f MRR=%.3f\n",
		res.PrecisionAt(1), res.PrecisionAt(3), res.PrecisionAt(10), res.MRR())
	prep, retr, rerank := res.MissCounts()
	fmt.Printf("  error stages: data-prep=%d retrieval=%d re-ranking=%d\n", prep, retr, rerank)

	// Show a few concrete translations.
	sys, err := runner.SystemFor(bench.Val[0].DB, bench.Val, eval.SamplesFromGeneralization)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nSample translations:")
	for _, it := range bench.Val[:3] {
		if it.DB != bench.Val[0].DB {
			continue
		}
		tr, err := sys.Translate(it.NL)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  Q:    %s\n  gold: %s\n  pred: %s\n", it.NL, it.Gold, tr.Top.SQL)
	}
}
