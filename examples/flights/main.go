// Flights: the paper's Fig. 7 scenario. The flights table references
// airports through two foreign keys (source and destination), so the
// meaning of a join is invisible in the identifiers — "arriving flights"
// versus "departing flights". Plain GAR verbalizes both joins the same
// way and confuses them; GAR-J uses manual join annotations to keep them
// apart. This example runs both side by side.
package main

import (
	"fmt"
	"log"

	"repro/gar"
)

func buildDB() *gar.Database {
	db := gar.NewDatabase("flight_2")
	db.AddTable("airports", gar.Key("airportCode"),
		gar.TextColumn("city", "city"),
		gar.TextColumn("airportCode", "airport code"),
		gar.TextColumn("airportName", "airport name"))
	db.AddTable("flights", gar.Key("flightNo"),
		gar.NumberColumn("flightNo", "flight number"),
		gar.TextColumn("sourceAirport", "source airport"),
		gar.TextColumn("destAirport", "destination airport"))
	db.AddForeignKey("flights", "sourceAirport", "airports", "airportCode")
	db.AddForeignKey("flights", "destAirport", "airports", "airportCode")

	// The GAR-J join annotations: one per join path, each with its own
	// semantics (§IV of the paper).
	db.AddJoinAnnotation(gar.JoinAnnotation{
		Tables:      []string{"airports", "flights"},
		Description: "the flights arrive in the airports",
		TableKeys:   "flight",
		Conditions: []gar.JoinCondition{{
			LeftTable: "airports", LeftColumn: "airportCode",
			RightTable: "flights", RightColumn: "destAirport",
		}},
	})
	db.AddJoinAnnotation(gar.JoinAnnotation{
		Tables:      []string{"airports", "flights"},
		Description: "the flights depart from the airports",
		TableKeys:   "flight",
		Conditions: []gar.JoinCondition{{
			LeftTable: "airports", LeftColumn: "airportCode",
			RightTable: "flights", RightColumn: "sourceAirport",
		}},
	})
	return db
}

var samples = []string{
	"SELECT T1.city FROM airports AS T1 JOIN flights AS T2 ON T1.airportCode = T2.destAirport GROUP BY T1.city ORDER BY COUNT(*) DESC LIMIT 1",
	"SELECT T1.city FROM airports AS T1 JOIN flights AS T2 ON T1.airportCode = T2.sourceAirport GROUP BY T1.city ORDER BY COUNT(*) DESC LIMIT 1",
	"SELECT COUNT(*) FROM flights",
	"SELECT city FROM airports",
	"SELECT airportName FROM airports WHERE city = 'Austin'",
}

var examples = []gar.Example{
	{Question: "which city has the most arriving flights", SQL: samples[0]},
	{Question: "which city has the most departing flights", SQL: samples[1]},
	{Question: "how many flights are there", SQL: samples[2]},
	{Question: "list all airport cities", SQL: samples[3]},
	{Question: "what are the names of airports in Austin", SQL: samples[4]},
}

func run(name string, joinAnnotations bool) {
	sys, err := gar.New(buildDB(), gar.Options{
		GeneralizeSize: 600, RetrievalK: 12, Seed: 2,
		EncoderEpochs: 14, RerankEpochs: 40,
		JoinAnnotations: joinAnnotations,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.Prepare(samples); err != nil {
		log.Fatal(err)
	}
	if err := sys.Train(examples); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("== %s ==\n", name)
	// Show how each mode verbalizes the two join directions.
	for _, sql := range samples[:2] {
		expl, err := sys.Explain(sql)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("SQL:     %s\nDialect: %s\n", sql, expl)
	}
	res, err := sys.Translate("which city has most number of arriving flights")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Q: which city has most number of arriving flights\nSQL: %s\n\n", res.SQL)
}

func main() {
	run("GAR (mechanical join phrasing)", false)
	run("GAR-J (join annotations)", true)
}
