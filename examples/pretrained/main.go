// Pretrained: the production deployment workflow. Ranking models are
// trained once on a training database, saved to disk, and later loaded
// and deployed on a different, unseen database — the paper's
// cross-domain setting (train on SPIDER's training databases, translate
// on validation databases never seen during training), plus the model
// persistence this library adds on top.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/gar"
)

func trainDB() *gar.Database {
	db := gar.NewDatabase("library")
	db.AddTable("book", gar.Key("book_id"),
		gar.NumberColumn("book_id", "book id"),
		gar.TextColumn("title", "title"),
		gar.TextColumn("genre", "genre"),
		gar.NumberColumn("pages", "pages"))
	db.AddTable("member", gar.Key("member_id"),
		gar.NumberColumn("member_id", "member id"),
		gar.TextColumn("name", "name"),
		gar.NumberColumn("age", "age"))
	return db
}

func deployDB() *gar.Database {
	db := gar.NewDatabase("garage")
	db.AddTable("mechanic", gar.Key("mechanic_id"),
		gar.NumberColumn("mechanic_id", "mechanic id"),
		gar.TextColumn("name", "name"),
		gar.NumberColumn("salary", "salary"),
		gar.NumberColumn("certifications", "certifications"))
	return db
}

func main() {
	// Phase 1: train on the library database and save the models.
	opts := gar.Options{GeneralizeSize: 500, RetrievalK: 10, Seed: 3,
		EncoderEpochs: 14, RerankEpochs: 40}
	trainSys, err := gar.New(trainDB(), opts)
	if err != nil {
		log.Fatal(err)
	}
	err = trainSys.Prepare([]string{
		"SELECT title FROM book",
		"SELECT COUNT(*) FROM book",
		"SELECT title FROM book WHERE genre = 'fantasy'",
		"SELECT title FROM book ORDER BY pages DESC LIMIT 1",
		"SELECT genre, COUNT(*) FROM book GROUP BY genre",
		"SELECT name FROM member WHERE age > 30",
		"SELECT AVG(age) FROM member",
		"SELECT COUNT(*) FROM member",
		"SELECT COUNT(*) FROM book WHERE pages > 300",
	})
	if err != nil {
		log.Fatal(err)
	}
	models, err := gar.TrainModels([]gar.TrainingSet{{System: trainSys, Examples: []gar.Example{
		{Question: "list all book titles", SQL: "SELECT title FROM book"},
		{Question: "how many books are there", SQL: "SELECT COUNT(*) FROM book"},
		{Question: "show fantasy books", SQL: "SELECT title FROM book WHERE genre = 'fantasy'"},
		{Question: "what is the longest book", SQL: "SELECT title FROM book ORDER BY pages DESC LIMIT 1"},
		{Question: "how many books per genre", SQL: "SELECT genre, COUNT(*) FROM book GROUP BY genre"},
		{Question: "which members are older than 30", SQL: "SELECT name FROM member WHERE age > 30"},
		{Question: "what is the average member age", SQL: "SELECT AVG(age) FROM member"},
		{Question: "how many members are there", SQL: "SELECT COUNT(*) FROM member"},
		{Question: "how many books have more than 300 pages", SQL: "SELECT COUNT(*) FROM book WHERE pages > 300"},
	}}}, opts)
	if err != nil {
		log.Fatal(err)
	}
	path := filepath.Join(os.TempDir(), "gar_models.gob")
	if err := models.SaveFile(path); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("models trained on %q and saved to %s\n\n", "library", path)

	// Phase 2: later (or on another machine), load the models and
	// deploy on a database the models never saw.
	loaded, err := gar.LoadModelsFile(path)
	if err != nil {
		log.Fatal(err)
	}
	deploySys, err := gar.New(deployDB(), gar.Options{GeneralizeSize: 300, RetrievalK: 8, Seed: 4})
	if err != nil {
		log.Fatal(err)
	}
	err = deploySys.Prepare([]string{
		"SELECT name FROM mechanic",
		"SELECT COUNT(*) FROM mechanic",
		"SELECT name FROM mechanic ORDER BY salary DESC LIMIT 1",
		"SELECT name FROM mechanic WHERE certifications > 2",
		"SELECT AVG(salary) FROM mechanic",
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := deploySys.UseModels(loaded); err != nil {
		log.Fatal(err)
	}

	for _, q := range []string{
		"how many mechanics are there",
		"who is the best paid mechanic",
		"what is the average pay",
	} {
		res, err := deploySys.Translate(q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("Q: %s\nSQL: %s\n\n", q, res.SQL)
	}
}
