// Quickstart: build the paper's Fig. 1 employee database, prepare GAR
// from a handful of sample SQL queries, train on a few (question, SQL)
// pairs, and translate new questions — including the "highest one time
// bonus" question that the seq2seq baselines in the paper mistranslate.
package main

import (
	"fmt"
	"log"

	"repro/gar"
)

func main() {
	// 1. Describe the database schema with NL annotations.
	db := gar.NewDatabase("employee_hire_evaluation")
	db.AddTable("employee", gar.Key("employee_id"),
		gar.NumberColumn("employee_id", "employee id"),
		gar.TextColumn("name", "name"),
		gar.NumberColumn("age", "age"),
		gar.TextColumn("city", "city"))
	// evaluation has a compound key: one employee can have several
	// bonuses, which GAR's dialect builder verbalizes as "one bonus".
	db.AddTable("evaluation", gar.Key("employee_id", "year_awarded"),
		gar.NumberColumn("employee_id", "employee id"),
		gar.TextColumn("year_awarded", "year awarded"),
		gar.NumberColumn("bonus", "bonus"))
	db.AddForeignKey("evaluation", "employee_id", "employee", "employee_id")

	sys, err := gar.New(db, gar.Options{
		GeneralizeSize: 800, RetrievalK: 15, Seed: 1,
		EncoderEpochs: 14, RerankEpochs: 40,
	})
	if err != nil {
		log.Fatal(err)
	}

	// 2. Offline data preparation: generalize the sample queries and
	// build dialect expressions.
	err = sys.Prepare([]string{
		"SELECT name FROM employee WHERE age > 30",
		"SELECT age FROM employee WHERE city = 'Austin'",
		"SELECT COUNT(*) FROM employee",
		"SELECT city, COUNT(*) FROM employee GROUP BY city",
		"SELECT name FROM employee ORDER BY age DESC LIMIT 1",
		"SELECT AVG(bonus) FROM evaluation",
		"SELECT T1.name FROM employee AS T1 JOIN evaluation AS T2 ON T1.employee_id = T2.employee_id ORDER BY T2.bonus DESC LIMIT 1",
		"SELECT city FROM employee",
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("candidate pool: %d component-similar queries\n\n", sys.PoolSize())

	// 3. Train the two-stage ranking pipeline.
	err = sys.Train([]gar.Example{
		{Question: "which employees are older than 30", SQL: "SELECT name FROM employee WHERE age > 30"},
		{Question: "what is the age of employees in Austin", SQL: "SELECT age FROM employee WHERE city = 'Austin'"},
		{Question: "how many employees are there", SQL: "SELECT COUNT(*) FROM employee"},
		{Question: "how many employees per city", SQL: "SELECT city, COUNT(*) FROM employee GROUP BY city"},
		{Question: "who is the oldest employee", SQL: "SELECT name FROM employee ORDER BY age DESC LIMIT 1"},
		{Question: "what is the average bonus", SQL: "SELECT AVG(bonus) FROM evaluation"},
		{Question: "find the name of the employee who got the highest one time bonus",
			SQL: "SELECT T1.name FROM employee AS T1 JOIN evaluation AS T2 ON T1.employee_id = T2.employee_id ORDER BY T2.bonus DESC LIMIT 1"},
		{Question: "list the cities of employees", SQL: "SELECT city FROM employee"},
	})
	if err != nil {
		log.Fatal(err)
	}

	// 4. Translate — including questions whose exact SQL was never a
	// sample (GAR answers them via component-similar generalization).
	for _, q := range []string{
		"find the name of the employee who got the highest one time bonus",
		"find the age of the employee who got the highest one time bonus",
		"how many employees are there",
		"which cities do employees live in",
	} {
		res, err := sys.Translate(q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("Q: %s\nSQL: %s\nDialect: %s\n\n", q, res.SQL, res.Dialect)
	}
}
