// SQL2NL: explore GAR's dialect builder (§III-B) — the deterministic
// SQL-to-natural-language translation underlying the whole approach.
// Each SQL clause maps to a phrase; schema annotations and key
// information shape the wording ("one bonus" for compound-key tables,
// "the number of flights" under GAR-J join annotations).
package main

import (
	"fmt"
	"log"

	"repro/gar"
)

func main() {
	db := gar.NewDatabase("employee_hire_evaluation")
	db.AddTable("employee", gar.Key("employee_id"),
		gar.NumberColumn("employee_id", "employee id"),
		gar.TextColumn("name", "name"),
		gar.NumberColumn("age", "age"),
		gar.TextColumn("city", "city"))
	db.AddTable("evaluation", gar.Key("employee_id", "year_awarded"),
		gar.NumberColumn("employee_id", "employee id"),
		gar.TextColumn("year_awarded", "year awarded"),
		gar.NumberColumn("bonus", "bonus"))
	db.AddForeignKey("evaluation", "employee_id", "employee", "employee_id")
	db.AddJoinAnnotation(gar.JoinAnnotation{
		Tables:      []string{"employee", "evaluation"},
		Description: "the employees that received evaluations",
		TableKeys:   "evaluation",
		Conditions: []gar.JoinCondition{{
			LeftTable: "employee", LeftColumn: "employee_id",
			RightTable: "evaluation", RightColumn: "employee_id",
		}},
	})

	plain, err := gar.New(db, gar.Options{})
	if err != nil {
		log.Fatal(err)
	}
	annotated, err := gar.New(db, gar.Options{JoinAnnotations: true})
	if err != nil {
		log.Fatal(err)
	}

	queries := []string{
		"SELECT name FROM employee",
		"SELECT DISTINCT city FROM employee",
		"SELECT COUNT(*) FROM employee",
		"SELECT AVG(age) FROM employee WHERE city = 'Austin'",
		"SELECT city, COUNT(*) FROM employee GROUP BY city HAVING COUNT(*) > 2",
		"SELECT name FROM employee ORDER BY age DESC LIMIT 3",
		"SELECT name FROM employee WHERE age BETWEEN 30 AND 40",
		"SELECT name FROM employee WHERE employee_id IN (SELECT employee_id FROM evaluation WHERE bonus > 1000)",
		"SELECT name FROM employee WHERE age > (SELECT AVG(age) FROM employee)",
		"SELECT city FROM employee EXCEPT SELECT city FROM employee WHERE age < 30",
		"SELECT T1.name FROM employee AS T1 JOIN evaluation AS T2 ON T1.employee_id = T2.employee_id ORDER BY T2.bonus DESC LIMIT 1",
		"SELECT COUNT(*) FROM employee AS T1 JOIN evaluation AS T2 ON T1.employee_id = T2.employee_id",
	}
	for _, sql := range queries {
		p, err := plain.Explain(sql)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("SQL:    %s\nGAR:    %s\n", sql, p)
		a, err := annotated.Explain(sql)
		if err != nil {
			log.Fatal(err)
		}
		if a != p {
			fmt.Printf("GAR-J:  %s\n", a)
		}
		fmt.Println()
	}
}
