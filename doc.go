// Package repro is a from-scratch Go reproduction of "GAR: A
// Generate-and-Rank Approach for Natural Language to SQL Translation"
// (Fan et al., ICDE 2023).
//
// The public API lives in repro/gar. Translation is available both as
// System.Translate and as System.TranslateContext, which threads a
// context.Context through the ranking hot loops (cancellation and
// deadlines are observed mid-scan), isolates each pipeline stage behind
// a recover boundary, and degrades gracefully: a re-ranking failure
// falls back to retrieval order and a value post-processing failure
// falls back to masked SQL, both flagged on Result.Degraded. A System
// is safe for concurrent translations, and `gar serve` (cmd/gar) runs
// it as an HTTP JSON service. See the README's "Serving & robustness"
// section.
//
// The serving state is copy-on-write: pool, index and models live in
// one immutable snapshot behind an atomic pointer, so a translation
// always observes a single consistent generation while System.Swap
// (surfaced as POST /reload) publishes a complete replacement with
// zero downtime. The server is overload-protected — internal/admit
// bounds in-flight work with a deadline-aware queue and sheds the
// excess with 429 + Retry-After, internal/breaker trips a failing
// re-ranker into retrieval-only degraded mode, and /readyz vs /healthz
// distinguish "routable" from "healthy". Model files are written
// crash-safely (temp file + fsync + rename, checksummed envelope) and
// torn or corrupted streams are rejected with gar.ErrCorruptModels.
// See the README's "Overload & hot reload" section.
//
// The repository is statically analyzed on two axes. internal/sqlcheck
// is a rule-based semantic analyzer for the SQL subset (join-graph
// connectivity, predicate type compatibility, aggregate/GROUP BY
// coherence, ORDER BY scope, subquery shape); the generalizer uses it
// to prune invalid candidates and `gar lint` applies it from the
// command line. internal/lint plus cmd/garlint form a custom vet tool
// (run via `go vet -vettool`, wired into `make verify`) whose
// analyzers enforce the repository's robustness conventions: no panics
// in library code, context propagation, and Must* helpers confined to
// tests and generators.
//
// The serving loop can also learn online. internal/feedback is a
// durable append-only WAL (CRC-64 frames, fsync before acknowledgement,
// crash recovery that truncates torn tails) for user feedback posted to
// /feedback — an endorsed candidate or a corrected SQL text, validated
// by re-parse and re-bind before it is recorded. A background
// gar.Trainer folds accepted pairs into the training set and retrains
// off the serving path; a retrained candidate is shadow-scored against
// the live snapshot on held-out feedback and only promoted when it is
// no worse, with a checkpointed rollback point and a post-promotion
// regression detector that restores the prior generation automatically.
// `gar feedback list|verify|compact` inspect and maintain the logs. See
// the README's "Online learning & safe promotion" section.
//
// The internal packages implement
// every substrate the paper depends on — SQL parsing and execution,
// SPIDER-style normalization and difficulty classification, the
// compositional generalizer, the dialect builder, the two-stage
// learning-to-rank pipeline, four baseline translators, synthetic
// versions of the GEO, SPIDER, MT-TEQL and QBEN benchmarks, and a
// deterministic fault injector (internal/faults) used by the
// robustness test harness. The
// top-level bench_test.go regenerates every table and figure of the
// paper's evaluation section; see DESIGN.md and EXPERIMENTS.md.
package repro
