// Package repro is a from-scratch Go reproduction of "GAR: A
// Generate-and-Rank Approach for Natural Language to SQL Translation"
// (Fan et al., ICDE 2023).
//
// The public API lives in repro/gar. The internal packages implement
// every substrate the paper depends on — SQL parsing and execution,
// SPIDER-style normalization and difficulty classification, the
// compositional generalizer, the dialect builder, the two-stage
// learning-to-rank pipeline, four baseline translators, and synthetic
// versions of the GEO, SPIDER, MT-TEQL and QBEN benchmarks. The
// top-level bench_test.go regenerates every table and figure of the
// paper's evaluation section; see DESIGN.md and EXPERIMENTS.md.
package repro
